//! Serving-layer tests: plan-cache correctness (hit bit-identity,
//! eviction bound, key discrimination), checkpoint-based preemption
//! bit-identity, and admission control.

use std::sync::Arc;

use memxct::preprocess::Kernel;
use memxct::{ReconInput, ReconRequest, ReconstructorBuilder, StopRule};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};
use xct_obs::{
    CACHE_EVICT, CACHE_HIT, CACHE_MISS, JOB_COMPLETED, JOB_PREEMPTED, JOB_REJECTED, JOB_RESUMED,
    JOB_SUBMITTED,
};
use xct_serve::{JobRuntime, JobSpec, PlanSpec, RuntimeConfig, SubmitError};

fn geometry(n: u32, m: u32) -> (Grid, ScanGeometry) {
    (Grid::new(n), ScanGeometry::new(m, n))
}

fn sino(grid: Grid, scan: ScanGeometry, n: u32, seed: u64) -> Sinogram {
    let truth = disk(0.3 + 0.05 * seed as f64, 1.0 + 0.5 * seed as f32).rasterize(n);
    simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, seed)
}

fn bits(image: &[f32]) -> Vec<u32> {
    image.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn cache_hit_is_bit_identical_to_fresh_build() {
    let (grid, scan) = geometry(16, 12);
    let s = sino(grid, scan, 16, 0);
    let request = ReconRequest::cg(ReconInput::Slice(s), StopRule::Fixed(6));

    let cache = xct_serve::PlanCache::new(2);
    let spec = PlanSpec::new(grid, scan);
    let (first, hit0) = cache.get_detailed(&spec).unwrap();
    let (second, hit1) = cache.get_detailed(&spec).unwrap();
    assert!(!hit0, "first lookup must build");
    assert!(hit1, "second lookup must hit");
    assert!(Arc::ptr_eq(&first, &second), "hit returns the same plan");

    // Output through the cached plan is bit-identical to a reconstructor
    // built directly from the same configuration.
    let fresh = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();
    let got = second.run(&request).unwrap();
    let want = fresh.run(&request).unwrap();
    assert_eq!(bits(&got.images[0]), bits(&want.images[0]));

    let snap = cache.metrics();
    assert_eq!(snap.counters[CACHE_HIT], 1);
    assert_eq!(snap.counters[CACHE_MISS], 1);
    assert!(!snap.counters.contains_key(CACHE_EVICT));
}

#[test]
fn eviction_respects_the_capacity_bound() {
    let (grid_a, scan_a) = geometry(16, 12);
    let (grid_b, scan_b) = geometry(24, 12);
    let cache = xct_serve::PlanCache::new(1);
    let spec_a = PlanSpec::new(grid_a, scan_a);
    let spec_b = PlanSpec::new(grid_b, scan_b);

    cache.get(&spec_a).unwrap();
    assert!(cache.contains(&spec_a));
    cache.get(&spec_b).unwrap();
    assert_eq!(cache.len(), 1, "capacity 1 holds one plan");
    assert!(!cache.contains(&spec_a), "LRU evicted the older plan");
    assert!(cache.contains(&spec_b));

    // Re-requesting the evicted plan is a miss again.
    cache.get(&spec_a).unwrap();
    let snap = cache.metrics();
    assert_eq!(snap.counters[CACHE_MISS], 3);
    assert_eq!(snap.counters[CACHE_EVICT], 2);
    assert!(!snap.counters.contains_key(CACHE_HIT));
}

#[test]
fn plan_key_distinguishes_kernel_partition_and_pool_configs() {
    let (grid, scan) = geometry(16, 12);
    let base = PlanSpec::new(grid, scan);
    assert_eq!(base.key(), PlanSpec::new(grid, scan).key());

    let mut kernel = base;
    kernel.kernel = Some(Kernel::Parallel);
    assert_ne!(base.key(), kernel.key(), "kernel choice splits the key");

    let mut part = base;
    part.config.partsize = 64;
    assert_ne!(base.key(), part.key(), "partition size splits the key");

    let mut pooled = base;
    pooled.use_pool = true;
    pooled.pool_threads = Some(2);
    assert_ne!(base.key(), pooled.key(), "pool config splits the key");
    let mut pooled4 = pooled;
    pooled4.pool_threads = Some(4);
    assert_ne!(pooled.key(), pooled4.key(), "thread count splits the key");

    let mut batched = base;
    batched.batch = 4;
    assert_ne!(base.key(), batched.key(), "batch width splits the key");

    // A thread-count hint without the pool is normalized away.
    let mut hint = base;
    hint.pool_threads = Some(8);
    assert_eq!(base.key(), hint.key());

    assert_ne!(base.key().fingerprint(), kernel.key().fingerprint());
}

#[test]
fn preempted_job_resumes_bit_identically() {
    let (grid, scan) = geometry(16, 12);
    let s = sino(grid, scan, 16, 1);
    let request = ReconRequest::cg(ReconInput::Slice(s), StopRule::Fixed(8));
    let plan = PlanSpec::new(grid, scan);

    // Direct, uninterrupted run of the same request.
    let fresh = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();
    let want = fresh.run(&request).unwrap();

    let runtime = JobRuntime::new(RuntimeConfig::default());
    let id = runtime
        .submit(JobSpec::new("drill", plan, request).preempt_at(3))
        .unwrap();
    let result = runtime.wait(id).expect("job result");
    let resp = result.outcome.expect("job completed");
    assert_eq!(result.report.preemptions, 1, "the drill preempted once");
    assert_eq!(
        bits(&resp.images[0]),
        bits(&want.images[0]),
        "preempt + resume must be bit-identical to an uninterrupted run"
    );
    assert_eq!(resp.slice_records[0].len(), 8, "all iterations ran");

    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_PREEMPTED], 1);
    assert_eq!(snap.counters[JOB_RESUMED], 1);
    assert_eq!(snap.counters[JOB_COMPLETED], 1);
}

#[test]
fn mixed_priority_jobs_all_complete_and_hit_the_cache() {
    let (grid, scan) = geometry(16, 12);
    let plan = PlanSpec::new(grid, scan);
    let runtime = JobRuntime::new(RuntimeConfig::default());
    let fresh = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();

    let mut ids = Vec::new();
    let mut wants = Vec::new();
    for (j, priority) in [(0u64, 0u8), (1, 2), (2, 1)] {
        let request = ReconRequest::cg(
            ReconInput::Slice(sino(grid, scan, 16, j)),
            StopRule::Fixed(5),
        );
        wants.push(fresh.run(&request).unwrap());
        ids.push(
            runtime
                .submit(JobSpec::new(format!("job{j}"), plan, request).priority(priority))
                .unwrap(),
        );
    }
    for (id, want) in ids.iter().zip(&wants) {
        let result = runtime.wait(*id).expect("result");
        let resp = result.outcome.expect("completed");
        assert_eq!(bits(&resp.images[0]), bits(&want.images[0]));
    }
    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_SUBMITTED], 3);
    assert_eq!(snap.counters[JOB_COMPLETED], 3);
    // One build, then every scheduling stint hits: preprocessing is
    // amortized across the fleet. A job caught mid-run by a
    // higher-priority arrival is requeued and pays one extra (hitting)
    // lookup per preemption, so account for those exactly rather than
    // racing the scheduler.
    assert_eq!(snap.counters[CACHE_MISS], 1);
    let preempted = snap.counters.get(JOB_PREEMPTED).copied().unwrap_or(0);
    assert_eq!(
        snap.counters[CACHE_HIT],
        2 + preempted,
        "each stint beyond the first build must hit the cache"
    );
}

#[test]
fn admission_control_bounds_queued_bytes() {
    let (grid, scan) = geometry(16, 12);
    let plan = PlanSpec::new(grid, scan);
    let runtime = JobRuntime::new(RuntimeConfig {
        max_queued_bytes: 0,
        ..RuntimeConfig::default()
    });
    let request = ReconRequest::cg(
        ReconInput::Slice(sino(grid, scan, 16, 0)),
        StopRule::Fixed(2),
    );
    let err = runtime
        .submit(JobSpec::new("too-big", plan, request))
        .unwrap_err();
    assert!(
        matches!(err, SubmitError::QueueFull { limit: 0, .. }),
        "{err}"
    );
    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_REJECTED], 1);
    assert!(!snap.counters.contains_key(JOB_SUBMITTED));

    // Results after shutdown: nothing ran.
    assert!(runtime.finish().is_empty());
}

//! Serving-layer tests: plan-cache correctness (hit bit-identity,
//! eviction bound, key discrimination), checkpoint-based preemption
//! bit-identity, admission control, and the supervision layer — panic
//! isolation, deadlines, deterministic retry, and the circuit breaker.

use std::sync::Arc;
use std::time::Duration;

use memxct::preprocess::Kernel;
use memxct::{
    CheckpointPolicy, DistConfig, DistSolver, ExecMode, FaultTolerance, ReconInput, ReconRequest,
    ReconstructorBuilder, StopRule,
};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};
use xct_obs::{
    BREAKER_STATE, BREAKER_TRIPS, CACHE_EVICT, CACHE_HIT, CACHE_MISS, JOB_COMPLETED, JOB_FAILED,
    JOB_PANICS, JOB_PREEMPTED, JOB_REJECTED, JOB_RESUMED, JOB_RETRIES, JOB_SHED, JOB_STOPPED,
    JOB_SUBMITTED, JOB_TIMEOUTS,
};
use xct_runtime::{FaultKind, FaultPlan, MemoryCheckpointSink};
use xct_serve::{
    BreakerConfig, JobError, JobId, JobRuntime, JobSpec, JobStatus, PlanSpec, RetryPolicy,
    RuntimeConfig, Shutdown, SubmitError,
};

fn geometry(n: u32, m: u32) -> (Grid, ScanGeometry) {
    (Grid::new(n), ScanGeometry::new(m, n))
}

fn sino(grid: Grid, scan: ScanGeometry, n: u32, seed: u64) -> Sinogram {
    let truth = disk(0.3 + 0.05 * seed as f64, 1.0 + 0.5 * seed as f32).rasterize(n);
    simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, seed)
}

fn bits(image: &[f32]) -> Vec<u32> {
    image.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn cache_hit_is_bit_identical_to_fresh_build() {
    let (grid, scan) = geometry(16, 12);
    let s = sino(grid, scan, 16, 0);
    let request = ReconRequest::cg(ReconInput::Slice(s), StopRule::Fixed(6));

    let cache = xct_serve::PlanCache::new(2);
    let spec = PlanSpec::new(grid, scan);
    let (first, hit0) = cache.get_detailed(&spec).unwrap();
    let (second, hit1) = cache.get_detailed(&spec).unwrap();
    assert!(!hit0, "first lookup must build");
    assert!(hit1, "second lookup must hit");
    assert!(Arc::ptr_eq(&first, &second), "hit returns the same plan");

    // Output through the cached plan is bit-identical to a reconstructor
    // built directly from the same configuration.
    let fresh = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();
    let got = second.run(&request).unwrap();
    let want = fresh.run(&request).unwrap();
    assert_eq!(bits(&got.images[0]), bits(&want.images[0]));

    let snap = cache.metrics();
    assert_eq!(snap.counters[CACHE_HIT], 1);
    assert_eq!(snap.counters[CACHE_MISS], 1);
    assert!(!snap.counters.contains_key(CACHE_EVICT));
}

#[test]
fn eviction_respects_the_capacity_bound() {
    let (grid_a, scan_a) = geometry(16, 12);
    let (grid_b, scan_b) = geometry(24, 12);
    let cache = xct_serve::PlanCache::new(1);
    let spec_a = PlanSpec::new(grid_a, scan_a);
    let spec_b = PlanSpec::new(grid_b, scan_b);

    cache.get(&spec_a).unwrap();
    assert!(cache.contains(&spec_a));
    cache.get(&spec_b).unwrap();
    assert_eq!(cache.len(), 1, "capacity 1 holds one plan");
    assert!(!cache.contains(&spec_a), "LRU evicted the older plan");
    assert!(cache.contains(&spec_b));

    // Re-requesting the evicted plan is a miss again.
    cache.get(&spec_a).unwrap();
    let snap = cache.metrics();
    assert_eq!(snap.counters[CACHE_MISS], 3);
    assert_eq!(snap.counters[CACHE_EVICT], 2);
    assert!(!snap.counters.contains_key(CACHE_HIT));
}

#[test]
fn plan_key_distinguishes_kernel_partition_and_pool_configs() {
    let (grid, scan) = geometry(16, 12);
    let base = PlanSpec::new(grid, scan);
    assert_eq!(base.key(), PlanSpec::new(grid, scan).key());

    let mut kernel = base;
    kernel.kernel = Some(Kernel::Parallel);
    assert_ne!(base.key(), kernel.key(), "kernel choice splits the key");

    let mut part = base;
    part.config.partsize = 64;
    assert_ne!(base.key(), part.key(), "partition size splits the key");

    let mut pooled = base;
    pooled.use_pool = true;
    pooled.pool_threads = Some(2);
    assert_ne!(base.key(), pooled.key(), "pool config splits the key");
    let mut pooled4 = pooled;
    pooled4.pool_threads = Some(4);
    assert_ne!(pooled.key(), pooled4.key(), "thread count splits the key");

    let mut batched = base;
    batched.batch = 4;
    assert_ne!(base.key(), batched.key(), "batch width splits the key");

    // A thread-count hint without the pool is normalized away.
    let mut hint = base;
    hint.pool_threads = Some(8);
    assert_eq!(base.key(), hint.key());

    assert_ne!(base.key().fingerprint(), kernel.key().fingerprint());
}

#[test]
fn preempted_job_resumes_bit_identically() {
    let (grid, scan) = geometry(16, 12);
    let s = sino(grid, scan, 16, 1);
    let request = ReconRequest::cg(ReconInput::Slice(s), StopRule::Fixed(8));
    let plan = PlanSpec::new(grid, scan);

    // Direct, uninterrupted run of the same request.
    let fresh = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();
    let want = fresh.run(&request).unwrap();

    let runtime = JobRuntime::new(RuntimeConfig::default());
    let id = runtime
        .submit(JobSpec::new("drill", plan, request).preempt_at(3))
        .unwrap();
    let result = runtime.wait(id).expect("job result");
    let resp = result.outcome.expect("job completed");
    assert_eq!(result.report.preemptions, 1, "the drill preempted once");
    assert_eq!(
        bits(&resp.images[0]),
        bits(&want.images[0]),
        "preempt + resume must be bit-identical to an uninterrupted run"
    );
    assert_eq!(resp.slice_records[0].len(), 8, "all iterations ran");

    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_PREEMPTED], 1);
    assert_eq!(snap.counters[JOB_RESUMED], 1);
    assert_eq!(snap.counters[JOB_COMPLETED], 1);
}

#[test]
fn mixed_priority_jobs_all_complete_and_hit_the_cache() {
    let (grid, scan) = geometry(16, 12);
    let plan = PlanSpec::new(grid, scan);
    let runtime = JobRuntime::new(RuntimeConfig::default());
    let fresh = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();

    let mut ids = Vec::new();
    let mut wants = Vec::new();
    for (j, priority) in [(0u64, 0u8), (1, 2), (2, 1)] {
        let request = ReconRequest::cg(
            ReconInput::Slice(sino(grid, scan, 16, j)),
            StopRule::Fixed(5),
        );
        wants.push(fresh.run(&request).unwrap());
        ids.push(
            runtime
                .submit(JobSpec::new(format!("job{j}"), plan, request).priority(priority))
                .unwrap(),
        );
    }
    for (id, want) in ids.iter().zip(&wants) {
        let result = runtime.wait(*id).expect("result");
        let resp = result.outcome.expect("completed");
        assert_eq!(bits(&resp.images[0]), bits(&want.images[0]));
    }
    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_SUBMITTED], 3);
    assert_eq!(snap.counters[JOB_COMPLETED], 3);
    // One build, then every scheduling stint hits: preprocessing is
    // amortized across the fleet. A job caught mid-run by a
    // higher-priority arrival is requeued and pays one extra (hitting)
    // lookup per preemption, so account for those exactly rather than
    // racing the scheduler.
    assert_eq!(snap.counters[CACHE_MISS], 1);
    let preempted = snap.counters.get(JOB_PREEMPTED).copied().unwrap_or(0);
    assert_eq!(
        snap.counters[CACHE_HIT],
        2 + preempted,
        "each stint beyond the first build must hit the cache"
    );
}

#[test]
fn admission_control_bounds_queued_bytes() {
    let (grid, scan) = geometry(16, 12);
    let plan = PlanSpec::new(grid, scan);
    let runtime = JobRuntime::new(RuntimeConfig {
        max_queued_bytes: 0,
        ..RuntimeConfig::default()
    });
    let request = ReconRequest::cg(
        ReconInput::Slice(sino(grid, scan, 16, 0)),
        StopRule::Fixed(2),
    );
    let err = runtime
        .submit(JobSpec::new("too-big", plan, request))
        .unwrap_err();
    assert!(
        matches!(err, SubmitError::QueueFull { limit: 0, .. }),
        "{err}"
    );
    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_REJECTED], 1);
    assert!(!snap.counters.contains_key(JOB_SUBMITTED));

    // Results after shutdown: nothing ran.
    assert!(runtime.finish().is_empty());
}

#[test]
fn panicked_job_wakes_waiters_and_runtime_keeps_serving() {
    let (grid, scan) = geometry(16, 12);
    let plan = PlanSpec::new(grid, scan);
    let runtime = JobRuntime::new(RuntimeConfig::default());
    let request = ReconRequest::cg(
        ReconInput::Slice(sino(grid, scan, 16, 0)),
        StopRule::Fixed(4),
    );

    // The regression: a waiter parked in `wait` on a job that dies by
    // panic must be woken with the typed error, not blocked forever.
    let id = runtime
        .submit(JobSpec::new("bang", plan, request.clone()).chaos_panic("chaos drill"))
        .unwrap();
    let result = std::thread::scope(|s| s.spawn(|| runtime.wait(id)).join().unwrap())
        .expect("the waiter must be woken with the panicked result");
    match &result.outcome {
        Err(JobError::Panicked { message }) => assert_eq!(message, "chaos drill"),
        other => panic!("expected a contained panic, got {other:?}"),
    }
    assert_eq!(runtime.status(id), Some(JobStatus::Failed));

    // The panic was contained to that job: the scheduler thread, the
    // plan cache, and the queue all keep serving.
    let id2 = runtime
        .submit(JobSpec::new("after", plan, request))
        .unwrap();
    let ok = runtime.wait(id2).expect("post-panic job result");
    assert!(ok.outcome.is_ok(), "runtime must serve after a panic");
    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_PANICS], 1);
    assert_eq!(snap.counters[JOB_FAILED], 1);
    assert_eq!(snap.counters[JOB_COMPLETED], 1);
}

#[test]
fn retried_crash_job_is_bit_identical_to_an_unfaulted_run() {
    let (grid, scan) = geometry(24, 36);
    let plan = PlanSpec::new(grid, scan);
    let s = sino(grid, scan, 24, 2);
    let config = DistConfig {
        ranks: 2,
        use_buffered: true,
        stop: StopRule::Fixed(8),
        solver: DistSolver::Cg,
    };

    // Unfaulted golden run of the same distributed request.
    let fresh = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();
    let want = fresh
        .run(
            &ReconRequest::cg(ReconInput::Slice(s.clone()), StopRule::Fixed(8))
                .mode(ExecMode::Distributed { config, ft: None }),
        )
        .unwrap();

    // Chaos: rank 1 crashes mid-solve, no inner restart budget — the
    // attempt fails with a typed CommError. The crash latches once per
    // fault-plan instance, so the runtime's retry (sharing the Arc'd
    // plan) succeeds, resuming from the job-private checkpoint when the
    // crashed attempt left one.
    let chaos = FaultTolerance {
        faults: Arc::new(FaultPlan::new().with(1, 4, FaultKind::Crash)),
        max_restarts: 0,
        ..FaultTolerance::default()
    };
    let request =
        ReconRequest::cg(ReconInput::Slice(s), StopRule::Fixed(8)).mode(ExecMode::Distributed {
            config,
            ft: Some(chaos),
        });
    let runtime = JobRuntime::new(RuntimeConfig::default());
    let id = runtime
        .submit(
            JobSpec::new("chaotic", plan, request)
                .retry(RetryPolicy::retries(2).base(Duration::ZERO))
                .checkpoint_every(1),
        )
        .unwrap();
    let result = runtime.wait(id).expect("result");
    let resp = result.outcome.expect("the retry must recover the crash");
    assert_eq!(result.report.retries, 1, "exactly one retry ran");
    assert_eq!(
        bits(&resp.images[0]),
        bits(&want.images[0]),
        "retried output must be bit-identical to an unfaulted run"
    );
    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_RETRIES], 1);
    assert_eq!(snap.counters[JOB_COMPLETED], 1);
}

#[test]
fn retry_backoff_parks_and_abort_stops_without_checkpoints() {
    let (grid, scan) = geometry(24, 36);
    let plan = PlanSpec::new(grid, scan);
    let runtime = JobRuntime::new(RuntimeConfig::default());

    // Unknown ids resolve immediately, bounded or not.
    assert!(runtime.wait(JobId(99)).is_none());
    assert!(runtime.wait_timeout(JobId(99), Duration::ZERO).is_none());

    let config = DistConfig {
        ranks: 2,
        use_buffered: true,
        stop: StopRule::Fixed(8),
        solver: DistSolver::Cg,
    };
    let chaos = FaultTolerance {
        faults: Arc::new(FaultPlan::new().with(1, 4, FaultKind::Crash)),
        max_restarts: 0,
        ..FaultTolerance::default()
    };
    let request = ReconRequest::cg(
        ReconInput::Slice(sino(grid, scan, 24, 0)),
        StopRule::Fixed(8),
    )
    .mode(ExecMode::Distributed {
        config,
        ft: Some(chaos),
    });
    // The first attempt crashes; the retry parks in a ~30s seeded
    // backoff. A bounded wait must give up while the job is non-terminal
    // (running or parked), leaving the result claimable.
    let id = runtime
        .submit(
            JobSpec::new("parked", plan, request)
                .retry(RetryPolicy::retries(3).base(Duration::from_secs(30))),
        )
        .unwrap();
    assert!(
        runtime
            .wait_timeout(id, Duration::from_millis(100))
            .is_none(),
        "a parked retry must not satisfy a bounded wait"
    );

    // Abort discards in-flight state: the parked job stops without
    // running its retry and without retaining a checkpoint.
    let mut results = runtime.shutdown(Shutdown::Abort);
    assert_eq!(results.len(), 1);
    let r = results.pop().unwrap();
    assert!(
        matches!(
            r.outcome,
            Err(JobError::Stopped {
                checkpointed: false
            })
        ),
        "expected an abort stop, got {:?}",
        r.outcome
    );
    assert!(r.checkpoint.is_none());
    assert_eq!(r.report.retries, 1, "the crash consumed one retry");
}

#[test]
fn deadline_overrun_retains_a_checkpoint_that_resumes_bit_identically() {
    let (grid, scan) = geometry(16, 12);
    let plan = PlanSpec::new(grid, scan);
    let s = sino(grid, scan, 16, 3);
    let request = ReconRequest::cg(ReconInput::Slice(s.clone()), StopRule::Fixed(8));

    let fresh = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();
    let want = fresh.run(&request).unwrap();

    // Seed a mid-solve snapshot (3 of 8 iterations), then submit the
    // full job with a zero budget: whether it is shed from the queue or
    // stopped at its first in-run boundary, it must end TimedOut with
    // the snapshot retained.
    let sink = Arc::new(MemoryCheckpointSink::new());
    fresh
        .run(
            &ReconRequest::cg(ReconInput::Slice(s), StopRule::Fixed(3))
                .checkpoint(CheckpointPolicy::new(sink.clone(), 1)),
        )
        .unwrap();

    let runtime = JobRuntime::new(RuntimeConfig::default());
    let id = runtime
        .submit(
            JobSpec::new("tight", plan, request.clone())
                .deadline(Duration::ZERO)
                .resume_from(sink),
        )
        .unwrap();
    let result = runtime.wait(id).expect("result");
    match result.outcome {
        Err(JobError::TimedOut {
            deadline,
            checkpointed,
        }) => {
            assert_eq!(deadline, Duration::ZERO);
            assert!(checkpointed, "the deadline stop must retain the snapshot");
        }
        other => panic!("expected a deadline overrun, got {other:?}"),
    }
    assert_eq!(runtime.status(id), Some(JobStatus::TimedOut));

    // Resume from the retained checkpoint with no deadline: the output
    // is bit-identical to an uninterrupted run.
    let retained = result.checkpoint.expect("retained checkpoint");
    let id2 = runtime
        .submit(JobSpec::new("resume", plan, request).resume_from(retained))
        .unwrap();
    let resumed = runtime.wait(id2).expect("resumed result");
    let resp = resumed.outcome.expect("resumed job completed");
    assert_eq!(
        bits(&resp.images[0]),
        bits(&want.images[0]),
        "deadline + resume must be bit-identical to an uninterrupted run"
    );
    assert_eq!(resp.slice_records[0].len(), 8, "all iterations accounted");

    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_TIMEOUTS], 1);
    assert!(snap.counters[JOB_RESUMED] >= 1);

    // Deadline-aware admission: a budget below the configured floor is
    // refused up front, before any queueing.
    let strict = JobRuntime::new(RuntimeConfig {
        min_deadline: Duration::from_secs(1),
        ..RuntimeConfig::default()
    });
    let err = strict
        .submit(
            JobSpec::new(
                "too-tight",
                plan,
                ReconRequest::cg(
                    ReconInput::Slice(sino(grid, scan, 16, 3)),
                    StopRule::Fixed(2),
                ),
            )
            .deadline(Duration::from_millis(10)),
        )
        .unwrap_err();
    assert!(matches!(err, SubmitError::DeadlineTooTight { .. }), "{err}");
}

#[test]
fn breaker_trips_sheds_and_recovers_via_half_open_probe() {
    let (grid, scan) = geometry(16, 12);
    let plan = PlanSpec::new(grid, scan);
    let req = || {
        ReconRequest::cg(
            ReconInput::Slice(sino(grid, scan, 16, 0)),
            StopRule::Fixed(2),
        )
    };

    // Long cooldown: after two consecutive contained panics the breaker
    // is open and submissions shed with the typed Degraded error.
    let runtime = JobRuntime::new(RuntimeConfig {
        breaker: BreakerConfig {
            trip_after: 2,
            cooldown: Duration::from_secs(3600),
        },
        ..RuntimeConfig::default()
    });
    for i in 0..2 {
        let id = runtime
            .submit(JobSpec::new(format!("bang{i}"), plan, req()).chaos_panic("boom"))
            .unwrap();
        runtime.wait(id).expect("panicked result");
    }
    let err = runtime
        .submit(JobSpec::new("shed", plan, req()))
        .unwrap_err();
    assert!(
        matches!(
            err,
            SubmitError::Degraded {
                consecutive_failures: 2
            }
        ),
        "{err}"
    );
    let snap = runtime.metrics();
    assert_eq!(snap.counters[JOB_SHED], 1);
    assert_eq!(snap.counters[BREAKER_TRIPS], 1);
    assert_eq!(snap.gauges[BREAKER_STATE], 1.0, "gauge reports open");
    assert!(!snap.counters.contains_key(JOB_STOPPED));
    drop(runtime);

    // Zero cooldown: the next submission is the half-open probe; its
    // success closes the breaker and the runtime serves normally again.
    let runtime = JobRuntime::new(RuntimeConfig {
        breaker: BreakerConfig {
            trip_after: 2,
            cooldown: Duration::ZERO,
        },
        ..RuntimeConfig::default()
    });
    for i in 0..2 {
        let id = runtime
            .submit(JobSpec::new(format!("bang{i}"), plan, req()).chaos_panic("boom"))
            .unwrap();
        runtime.wait(id).expect("panicked result");
    }
    let probe = runtime.submit(JobSpec::new("probe", plan, req())).unwrap();
    assert!(
        runtime.wait(probe).expect("probe result").outcome.is_ok(),
        "the half-open probe must be admitted and run"
    );
    let after = runtime.submit(JobSpec::new("after", plan, req())).unwrap();
    assert!(runtime
        .wait(after)
        .expect("post-probe result")
        .outcome
        .is_ok());
    let snap = runtime.metrics();
    assert_eq!(snap.gauges[BREAKER_STATE], 0.0, "probe success closed it");
    assert_eq!(snap.counters[JOB_COMPLETED], 2);
}

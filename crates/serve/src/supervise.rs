//! The supervision layer's policy machinery: deterministic retry
//! backoff, the runtime circuit breaker, and the shutdown modes.
//!
//! Everything here is a pure, deterministic state machine — no ambient
//! clock, no RNG. Time enters only as explicit [`Instant`]s passed by the
//! runtime (wall clock in production, the virtual clock under an
//! `xct-model` schedule), and backoff jitter comes from a seeded hash of
//! `(seed, job, attempt)`, so a retried schedule replays identically.

use std::time::Duration;

use xct_model::time::Instant;

use memxct::{BuildError, ReconError};
use xct_runtime::CommErrorKind;

use crate::job::JobError;

/// Bounded, deterministic retry policy for retryable job failures.
///
/// Attempt `k` (1-based retry count) is delayed by
/// `base · 2^(k-1) + jitter(seed, job, k)` where the jitter is a seeded
/// hash mapped into `[0, base)` — exponential backoff with deterministic
/// jitter, capped at [`cap`](Self::cap). The same `(seed, job, attempt)`
/// always yields the same delay, which is what makes a chaos soak
/// replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff unit (the first retry waits `base + jitter`).
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Seed folded into the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(250),
            seed: 0xC1A0_5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and the default backoff shape.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Replace the backoff base unit.
    pub fn base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Replace the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The deterministic delay before retry number `retry` (1-based) of
    /// job `job_seq`.
    pub fn backoff(&self, job_seq: u64, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        let scaled = self.base.saturating_mul(1u32 << exp);
        let jitter_ns = if self.base.is_zero() {
            0
        } else {
            splitmix64(
                self.seed
                    .wrapping_add(job_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(retry as u64),
            ) % self.base.as_nanos().max(1) as u64
        };
        scaled
            .saturating_add(Duration::from_nanos(jitter_ns))
            .min(self.cap)
    }
}

/// SplitMix64: the standard 64-bit finalizer-style mixer; deterministic
/// and dependency-free.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether a failed attempt may be retried: transient communication
/// faults only — the chaos-injectable crash/drop/delay class of PR 5's
/// `FaultPlan` (crashes, exhausted delivery retries, deadline timeouts,
/// peer-failure aborts, hangups, corrupt frames). Deterministic failures
/// — panics, invalid requests, plan-validation violations, checkpoint
/// decode errors — would fail identically on every attempt and are not.
pub fn is_retryable(err: &JobError) -> bool {
    match err {
        JobError::Recon(ReconError::Build(BuildError::Comm(e))) => matches!(
            e.kind,
            CommErrorKind::Crash
                | CommErrorKind::SendLost { .. }
                | CommErrorKind::Timeout { .. }
                | CommErrorKind::Aborted { .. }
                | CommErrorKind::Disconnected
                | CommErrorKind::Corrupt
        ),
        _ => false,
    }
}

/// Circuit-breaker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive job failures that trip the breaker open (0 disables
    /// the breaker entirely).
    pub trip_after: u32,
    /// How long the breaker sheds before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 0,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Where the circuit breaker currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally; counts consecutive failures.
    Closed,
    /// Shedding all submissions until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe submission has been admitted; its
    /// outcome decides between `Closed` and `Open`.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding for the `breaker/state` gauge.
    pub fn gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        }
    }
}

/// The runtime circuit breaker: a deterministic closed → open →
/// half-open state machine over job outcomes. Deadline overruns do not
/// count as failures (they indicate an over-committed client, not a
/// broken runtime); panics and reconstruction errors do.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    trips: u64,
}

impl Breaker {
    /// A closed breaker with the given configuration.
    pub fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            trips: 0,
        }
    }

    /// The current state (after lazily applying the cooldown transition).
    pub fn state(&mut self) -> BreakerState {
        if self.state == BreakerState::Open {
            let elapsed = self.opened_at.map(|t| t.elapsed()).unwrap_or_default();
            if elapsed >= self.config.cooldown {
                self.state = BreakerState::HalfOpen;
            }
        }
        self.state
    }

    /// Total closed → open transitions so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Consecutive failures observed while closed.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Admission decision for one submission: `Ok` admits (and consumes
    /// the half-open probe slot), `Err` carries how many consecutive
    /// failures tripped the breaker.
    pub fn admit(&mut self) -> Result<(), u32> {
        match self.state() {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => Err(self.consecutive_failures),
        }
    }

    /// Record a job success: closes the breaker and resets the failure
    /// streak.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// Record a job failure; returns `true` when this failure trips the
    /// breaker open (from closed or from a failed half-open probe).
    pub fn record_failure(&mut self) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.config.trip_after == 0 {
            return false;
        }
        let should_open = match self.state {
            BreakerState::Closed => self.consecutive_failures >= self.config.trip_after,
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if should_open {
            self.state = BreakerState::Open;
            self.opened_at = Some(Instant::now());
            self.trips += 1;
        }
        should_open
    }
}

/// How [`crate::JobRuntime::shutdown`] winds the runtime down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shutdown {
    /// Stop accepting jobs; the running and queued jobs all run to
    /// completion (the historical `finish()` behavior).
    Drain,
    /// Stop accepting jobs; the running job checkpoints at its next
    /// iteration boundary and is reported
    /// [`crate::JobStatus::Stopped`] with its snapshot retained (resume
    /// it later by resubmitting with the retained sink); queued jobs
    /// stop without running, keeping any earlier snapshot.
    CheckpointAndStop,
    /// Stop as fast as cooperative preemption allows and discard all
    /// in-flight state: the running job stops at its next iteration
    /// boundary, its snapshot is dropped, and queued jobs stop without
    /// running or retaining checkpoints.
    Abort,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_monotone_in_attempt() {
        let p = RetryPolicy::retries(5).base(Duration::from_millis(2));
        let a = p.backoff(7, 1);
        assert_eq!(a, p.backoff(7, 1), "same (seed, job, attempt) → same delay");
        assert_ne!(
            p.backoff(7, 1),
            p.backoff(8, 1),
            "different jobs get different jitter"
        );
        // Exponential growth dominates the sub-base jitter.
        assert!(p.backoff(7, 2) > p.backoff(7, 1));
        assert!(p.backoff(7, 3) > p.backoff(7, 2));
        // The cap bounds every delay.
        assert!(p.backoff(7, 20) <= p.cap);
    }

    #[test]
    fn zero_base_backoff_is_zero() {
        let p = RetryPolicy::retries(2).base(Duration::ZERO);
        assert_eq!(p.backoff(0, 1), Duration::ZERO);
        assert_eq!(p.backoff(0, 2), Duration::ZERO);
    }

    #[test]
    fn breaker_trips_after_k_and_probe_decides() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 2,
            cooldown: Duration::ZERO,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure());
        assert!(b.admit().is_ok(), "one failure keeps serving");
        assert!(b.record_failure(), "second consecutive failure trips");
        assert_eq!(b.trips(), 1);
        // Zero cooldown: the next admission is the half-open probe.
        assert!(b.admit().is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe re-opens; a successful one closes.
        assert!(b.record_failure());
        assert_eq!(b.trips(), 2);
        assert!(b.admit().is_ok(), "cooldown zero → probe again");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 0,
            cooldown: Duration::ZERO,
        });
        for _ in 0..10 {
            assert!(!b.record_failure());
            assert!(b.admit().is_ok());
        }
        assert_eq!(b.trips(), 0);
    }
}

//! The keyed plan cache: geometry + plan configuration in,
//! already-preprocessed [`Reconstructor`] out.

use std::collections::HashMap;

use xct_model::sync::{Arc, Mutex};

use memxct::preprocess::{Config, Kernel};
use memxct::{BuildError, Reconstructor, ReconstructorBuilder};
use xct_geometry::{Grid, ScanGeometry};
use xct_obs::{Metrics, MetricsSnapshot, CACHE_EVICT, CACHE_HIT, CACHE_MISS};
use xct_runtime::fnv1a64;

/// Everything that shapes a reconstructor's memoized plan: the geometry
/// plus the preprocessing/execution configuration. Two specs with equal
/// [`PlanKey`]s build bit-identical plans, so a cached reconstructor can
/// serve either.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSpec {
    /// Tomogram grid.
    pub grid: Grid,
    /// Scan geometry (projections × channels).
    pub scan: ScanGeometry,
    /// Preprocessing configuration (ordering, projector, partition and
    /// buffer sizes, which layouts to build).
    pub config: Config,
    /// Kernel override; `None` picks the builder's default.
    pub kernel: Option<Kernel>,
    /// Execute on the persistent worker pool.
    pub use_pool: bool,
    /// Worker count for the pool; `None` uses the environment default.
    pub pool_threads: Option<usize>,
    /// Slices per engine run (SpMM width).
    pub batch: usize,
}

impl PlanSpec {
    /// A spec with the default configuration (serial execution, batch 1).
    pub fn new(grid: Grid, scan: ScanGeometry) -> Self {
        PlanSpec {
            grid,
            scan,
            config: Config::default(),
            kernel: None,
            use_pool: false,
            pool_threads: None,
            batch: 1,
        }
    }

    /// The cache key identifying this spec's plan.
    pub fn key(&self) -> PlanKey {
        PlanKey {
            grid_n: self.grid.n(),
            projections: self.scan.num_projections(),
            channels: self.scan.num_channels(),
            ordering: self.config.ordering,
            projector: self.config.projector,
            partsize: self.config.partsize,
            buffsize: self.config.buffsize,
            build_buffered: self.config.build_buffered,
            build_ell: self.config.build_ell,
            kernel: self.kernel,
            use_pool: self.use_pool,
            pool_threads: if self.use_pool {
                self.pool_threads
            } else {
                None
            },
            batch: self.batch,
        }
    }

    /// Build (and validate) the reconstructor this spec describes,
    /// recording into `metrics`.
    fn build(&self, metrics: &Metrics) -> Result<Reconstructor, BuildError> {
        let mut b = ReconstructorBuilder::new(self.grid, self.scan)
            .config(self.config)
            .batch(self.batch)
            .use_pool(self.use_pool)
            .validate_plan(true)
            .metrics(metrics.clone());
        if let Some(k) = self.kernel {
            b = b.kernel(k);
        }
        if let Some(t) = self.pool_threads {
            b = b.pool_threads(t);
        }
        b.build()
    }
}

/// Identity of a memoized plan: a stable, hashable projection of the
/// validated plan inputs. Structural equality (not a hash) decides cache
/// hits, so distinct configurations can never collide into a false hit;
/// [`fingerprint`](Self::fingerprint) gives a stable 64-bit digest for
/// logs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    grid_n: u32,
    projections: u32,
    channels: u32,
    ordering: memxct::DomainOrdering,
    projector: memxct::Projector,
    partsize: usize,
    buffsize: usize,
    build_buffered: bool,
    build_ell: bool,
    kernel: Option<Kernel>,
    use_pool: bool,
    /// Only meaningful when `use_pool`; normalized to `None` otherwise so
    /// a thread-count hint on a serial spec cannot split the key.
    pool_threads: Option<usize>,
    batch: usize,
}

impl PlanKey {
    /// Stable FNV-1a digest of the key (for logs and job reports).
    pub fn fingerprint(&self) -> u64 {
        let repr = format!("{self:?}");
        fnv1a64(repr.as_bytes())
    }
}

struct Entry {
    rec: Arc<Reconstructor>,
    last_used: u64,
}

struct CacheState {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
}

/// Bounded keyed cache of built reconstructors: [`PlanKey`] →
/// `Arc<Reconstructor>`, least-recently-used eviction, plan validation
/// run once at insert, `cache/{hit,miss,evict}` counters in the shared
/// metrics registry. Safe to share across threads.
pub struct PlanCache {
    state: Mutex<CacheState>,
    capacity: usize,
    metrics: Metrics,
}

impl PlanCache {
    /// A cache holding at most `capacity` built plans, recording into a
    /// fresh collecting registry.
    pub fn new(capacity: usize) -> Self {
        PlanCache::with_metrics(capacity, Metrics::collecting())
    }

    /// A cache recording into a shared metrics registry (cached
    /// reconstructors record their kernel/solver metrics there too).
    pub fn with_metrics(capacity: usize, metrics: Metrics) -> Self {
        PlanCache {
            state: Mutex::named(
                "serve/cache/state",
                CacheState {
                    map: HashMap::new(),
                    tick: 0,
                },
            ),
            capacity: capacity.max(1),
            metrics,
        }
    }

    /// The reconstructor for `spec`: the cached one when the key is
    /// already present (a hit — no preprocessing runs), otherwise built,
    /// validated, inserted (evicting the least-recently-used entry when
    /// at capacity), and returned. The build happens under the cache
    /// lock, so concurrent requests for the same new key build once.
    pub fn get(&self, spec: &PlanSpec) -> Result<Arc<Reconstructor>, BuildError> {
        self.get_detailed(spec).map(|(rec, _)| rec)
    }

    /// [`get`](Self::get), also reporting whether the lookup was a hit.
    pub fn get_detailed(&self, spec: &PlanSpec) -> Result<(Arc<Reconstructor>, bool), BuildError> {
        let key = spec.key();
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(entry) = state.map.get_mut(&key) {
            entry.last_used = tick;
            self.metrics.counter_add(CACHE_HIT, 1);
            return Ok((entry.rec.clone(), true));
        }
        self.metrics.counter_add(CACHE_MISS, 1);
        let rec = Arc::new(spec.build(&self.metrics)?);
        while state.map.len() >= self.capacity {
            // Evict the least-recently-used entry; in-flight borrowers
            // keep their Arc alive until they drop it.
            let Some(oldest) = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            state.map.remove(&oldest);
            self.metrics.counter_add(CACHE_EVICT, 1);
        }
        state.map.insert(
            key,
            Entry {
                rec: rec.clone(),
                last_used: tick,
            },
        );
        Ok((rec, false))
    }

    /// Whether a plan for `spec` is currently cached (does not touch the
    /// LRU clock or counters).
    pub fn contains(&self, spec: &PlanSpec) -> bool {
        let state = self.state.lock();
        state.map.contains_key(&spec.key())
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        let state = self.state.lock();
        state.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shared metrics handle (counters: `cache/{hit,miss,evict}`).
    pub fn metrics_handle(&self) -> &Metrics {
        &self.metrics
    }

    /// Snapshot of everything recorded: cache counters plus whatever the
    /// cached reconstructors recorded while solving.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

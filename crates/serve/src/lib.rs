//! Reconstruction-as-a-service: a keyed plan cache and a priority job
//! runtime over the [`memxct::ReconRequest`] API.
//!
//! MemXCT's economics are memoization — preprocessing is paid once per
//! geometry and amortized over every subsequent solve (the paper's
//! Table 5 "All Slices"). A single [`memxct::Reconstructor`] realizes
//! that amortization *per process*; this crate lifts it *per fleet*:
//!
//! - [`PlanCache`] keys already-built (and `validate_plan`-checked)
//!   reconstructors by everything that shapes their memoized plan —
//!   geometry, ordering, projector, partition/buffer sizes, kernel,
//!   pool and batch configuration — so a job for an already-seen
//!   [`PlanSpec`] skips preprocessing entirely. Bounded LRU with
//!   `cache/{hit,miss,evict}` counters in `xct-obs`.
//! - [`JobRuntime`] is a multi-producer job queue and scheduler: jobs
//!   carry a priority, run FIFO within priority, and a higher-priority
//!   arrival *preempts* the running job through the PR 5 checkpoint
//!   machinery — the running solve snapshots at its next iteration
//!   boundary, parks, and later resumes bit-identically. Admission
//!   control bounds the queued measurement bytes, and every job gets a
//!   [`JobReport`] (queue time, run time, cache hit, iterations) under
//!   the `job/*` metric families.
//!
//! - **Supervision** (DESIGN.md "Supervised serving"): every job runs
//!   under `catch_unwind` panic isolation, an optional per-job deadline
//!   enforced through cooperative preemption, and a deterministic
//!   seeded [`RetryPolicy`] for transient communication faults; a
//!   [`Breaker`] sheds load after consecutive failures, and
//!   [`JobRuntime::shutdown`] supports
//!   [`Drain`](Shutdown::Drain) / [`CheckpointAndStop`](Shutdown::CheckpointAndStop) /
//!   [`Abort`](Shutdown::Abort) wind-down. The `job/*` and `breaker/*`
//!   metric families meter all of it.
//!
//! The `xct` CLI's `serve` subcommand drains a job file through exactly
//! this runtime.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod job;
mod supervise;

pub use cache::{PlanCache, PlanKey, PlanSpec};
pub use job::{
    JobError, JobId, JobReport, JobResult, JobRuntime, JobSpec, JobStatus, RuntimeConfig,
    SubmitError,
};
pub use supervise::{is_retryable, Breaker, BreakerConfig, BreakerState, RetryPolicy, Shutdown};

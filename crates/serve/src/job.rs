//! The job runtime: a multi-producer priority queue and a supervised
//! scheduler thread draining it through the plan cache, with
//! checkpoint-based preemption.
//!
//! Scheduling policy: highest priority first, FIFO within a priority.
//! When a job with strictly higher priority is submitted while a
//! lower-priority job is running, the runtime requests preemption — the
//! running solve snapshots into a job-private in-memory checkpoint at
//! its next iteration boundary and goes back to the queue; when it is
//! scheduled again it resumes from that snapshot, and its final output
//! is bit-identical to an uninterrupted run (the PR 5 checkpoint
//! guarantee). Admission control rejects submissions once the queued
//! measurement bytes would exceed the configured bound.
//!
//! Supervision (see DESIGN.md "Supervised serving"):
//!
//! - **Panic isolation** — job execution runs under `catch_unwind`; a
//!   panicking plan build or solve becomes [`JobError::Panicked`] on
//!   that job alone, its waiters are woken, and the scheduler, the
//!   [`PlanCache`], and every other job keep serving.
//! - **Deadlines** — [`JobSpec::deadline`] arms a per-job budget
//!   measured from submission on the `xct-model` clock facade (wall
//!   clock in production, virtual time under a model schedule). The
//!   running solve is stopped through the same [`RunControl`]
//!   cooperative-preemption path and reported [`JobStatus::TimedOut`]
//!   with its last checkpoint retained for resume; a queued job whose
//!   deadline lapses is shed without running.
//! - **Deterministic retry** — transient communication failures
//!   (the chaos-injectable crash/drop/delay class) are retried up to
//!   [`RetryPolicy::max_retries`] times with seeded exponential
//!   backoff, resuming from the job's checkpoint when one exists, so a
//!   retried job's output is bit-identical to an unfaulted run.
//! - **Graceful degradation** — a [`Breaker`](crate::Breaker) sheds
//!   submissions with [`SubmitError::Degraded`] after K consecutive
//!   failures (half-open probe after a cooldown), and
//!   [`JobRuntime::shutdown`] offers
//!   [`Drain`](Shutdown::Drain) / [`CheckpointAndStop`](Shutdown::CheckpointAndStop) /
//!   [`Abort`](Shutdown::Abort) wind-down modes.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use xct_model::sync::{Arc, Condvar, Mutex};
use xct_model::thread;
use xct_model::time::Instant;

use memxct::{CheckpointPolicy, ReconError, ReconRequest, ReconResponse, RunControl, RunOutcome};
use xct_obs::{
    Metrics, MetricsSnapshot, BREAKER_STATE, BREAKER_TRIPS, JOB_COMPLETED, JOB_FAILED, JOB_PANICS,
    JOB_PREEMPTED, JOB_QUEUE_SECONDS, JOB_REJECTED, JOB_RESUMED, JOB_RETRIES, JOB_RUN_SECONDS,
    JOB_SHED, JOB_STOPPED, JOB_SUBMITTED, JOB_TIMEOUTS,
};
use xct_runtime::MemoryCheckpointSink;

use crate::cache::{PlanCache, PlanSpec};
use crate::supervise::{is_retryable, Breaker, BreakerConfig, RetryPolicy, Shutdown};

/// Poll interval for waiter loops: the upper bound on how long a waiter
/// can stay parked before re-checking that the scheduler thread is still
/// alive (the dead-worker safety net). Virtual — and therefore free —
/// under a model schedule.
const WAITER_POLL: Duration = Duration::from_millis(50);

/// Why a job ended without a response.
#[derive(Debug)]
pub enum JobError {
    /// The reconstruction itself failed (the request-level error of
    /// [`memxct::Reconstructor::run`], which also covers plan build
    /// failures surfaced by the cache). Exhausted retries land here with
    /// the final attempt's error.
    Recon(ReconError),
    /// The plan build or solve panicked; the panic was contained to this
    /// job and the runtime kept serving.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The job's deadline lapsed; it was stopped at an iteration
    /// boundary (or shed from the queue before running).
    TimedOut {
        /// The budget the job was submitted with.
        deadline: Duration,
        /// Whether a checkpoint snapshot is retained in
        /// [`JobResult::checkpoint`] for a later resume.
        checkpointed: bool,
    },
    /// The runtime was shut down in a non-drain mode before the job
    /// finished.
    Stopped {
        /// Whether a checkpoint snapshot is retained in
        /// [`JobResult::checkpoint`] for a later resume
        /// ([`Shutdown::CheckpointAndStop`] only).
        checkpointed: bool,
    },
}

impl From<ReconError> for JobError {
    fn from(e: ReconError) -> Self {
        JobError::Recon(e)
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Recon(e) => write!(f, "{e}"),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::TimedOut {
                deadline,
                checkpointed,
            } => write!(
                f,
                "deadline of {:.3}s exceeded ({})",
                deadline.as_secs_f64(),
                if *checkpointed {
                    "checkpoint retained"
                } else {
                    "no checkpoint"
                }
            ),
            JobError::Stopped { checkpointed } => write!(
                f,
                "stopped by runtime shutdown ({})",
                if *checkpointed {
                    "checkpoint retained"
                } else {
                    "no checkpoint"
                }
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(
    /// Monotonic submission number (also the tiebreaker within a
    /// priority level).
    pub u64,
);

/// One unit of work for the runtime: which plan to solve on, the request
/// itself, and how urgently — plus its supervision envelope (deadline,
/// retry policy, checkpoint cadence).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label carried into the report.
    pub name: String,
    /// Plan the job solves on (cache key).
    pub plan: PlanSpec,
    /// The reconstruction request. Its `checkpoint` field is replaced by
    /// a job-private in-memory policy (the preemption/retry substrate);
    /// route durable checkpointing through
    /// [`memxct::Reconstructor::run`] directly if you need it.
    pub request: ReconRequest,
    /// Scheduling priority (higher runs first; a strictly higher arrival
    /// preempts the running job).
    pub priority: u8,
    /// Per-job budget measured from submission (wall clock in
    /// production, virtual time under a model schedule). Enforced at
    /// iteration boundaries; `None` means no deadline. A run that
    /// completes at the same boundary its deadline fires counts as
    /// completed.
    pub deadline: Option<Duration>,
    /// Retry policy for transient communication failures; `None` fails
    /// fast.
    pub retry: Option<RetryPolicy>,
    /// Checkpoint cadence in iterations for the job-private sink (0 =
    /// snapshot only on preemption). A non-zero cadence gives failed
    /// attempts a snapshot to resume from, so retries re-run only the
    /// iterations after the last snapshot.
    pub checkpoint_every: usize,
    /// Resume substrate carried over from an earlier
    /// [`JobResult::checkpoint`]: the job starts from this sink's latest
    /// snapshot instead of iteration zero.
    pub resume_from: Option<Arc<MemoryCheckpointSink>>,
    /// Deterministic self-preemption drill: checkpoint and yield at this
    /// iteration boundary on the first attempt (used by the serve-smoke
    /// CI job to exercise preempt/resume without timing races).
    pub preempt_at: Option<usize>,
    /// Fault-injection drill: panic with this message instead of
    /// solving (exercises the supervision layer's panic isolation).
    pub chaos_panic: Option<String>,
}

impl JobSpec {
    /// A priority-0 job with no deadline, no retries, and no drills.
    pub fn new(name: impl Into<String>, plan: PlanSpec, request: ReconRequest) -> Self {
        JobSpec {
            name: name.into(),
            plan,
            request,
            priority: 0,
            deadline: None,
            retry: None,
            checkpoint_every: 0,
            resume_from: None,
            preempt_at: None,
            chaos_panic: None,
        }
    }

    /// Set the scheduling priority.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Arm a per-job deadline (measured from submission).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a retry policy for transient communication failures.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Set the job-private checkpoint cadence (0 = preemption only).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Start from an earlier job's retained checkpoint sink.
    pub fn resume_from(mut self, sink: Arc<MemoryCheckpointSink>) -> Self {
        self.resume_from = Some(sink);
        self
    }

    /// Arm the deterministic self-preemption drill.
    pub fn preempt_at(mut self, boundary: usize) -> Self {
        self.preempt_at = Some(boundary);
        self
    }

    /// Arm the panic drill: the job panics instead of solving.
    pub fn chaos_panic(mut self, message: impl Into<String>) -> Self {
        self.chaos_panic = Some(message.into());
        self
    }
}

/// Where a job currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue (first time, after a preemption, or in a
    /// retry backoff).
    Queued,
    /// Currently solving.
    Running,
    /// Finished successfully; the result is available.
    Completed,
    /// Finished with an error (including a contained panic); the result
    /// carries it.
    Failed,
    /// Its deadline lapsed; the result carries the retained checkpoint
    /// when one exists.
    TimedOut,
    /// Ended by a non-drain shutdown before completing.
    Stopped,
}

impl JobStatus {
    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: accepting the job would push the queued
    /// measurement bytes past the bound.
    QueueFull {
        /// Bytes already queued.
        queued_bytes: usize,
        /// Bytes the rejected job carries.
        incoming_bytes: usize,
        /// The configured bound.
        limit: usize,
    },
    /// Deadline-aware admission: the requested deadline is below the
    /// runtime's configured floor — too tight to plausibly serve.
    DeadlineTooTight {
        /// The rejected deadline.
        deadline: Duration,
        /// The configured minimum.
        min_deadline: Duration,
    },
    /// The circuit breaker is open after consecutive job failures; the
    /// runtime is shedding load until its cooldown admits a probe.
    Degraded {
        /// The failure streak that tripped the breaker.
        consecutive_failures: u32,
    },
    /// The runtime is shutting down and no longer accepts jobs.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull {
                queued_bytes,
                incoming_bytes,
                limit,
            } => write!(
                f,
                "queue full: {queued_bytes} bytes queued + {incoming_bytes} incoming \
                 exceeds the {limit}-byte admission bound"
            ),
            SubmitError::DeadlineTooTight {
                deadline,
                min_deadline,
            } => write!(
                f,
                "deadline {:.3}s is below the {:.3}s admission floor",
                deadline.as_secs_f64(),
                min_deadline.as_secs_f64()
            ),
            SubmitError::Degraded {
                consecutive_failures,
            } => write!(
                f,
                "degraded: circuit breaker open after {consecutive_failures} consecutive \
                 job failures"
            ),
            SubmitError::ShuttingDown => write!(f, "runtime is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Accounting for one finished job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's handle.
    pub id: JobId,
    /// Label from the spec.
    pub name: String,
    /// Scheduling priority.
    pub priority: u8,
    /// Stable digest of the plan key the job solved on.
    pub plan_fingerprint: u64,
    /// Whether the first attempt found its plan already cached (no
    /// preprocessing ran for this job).
    pub cache_hit: bool,
    /// Seconds spent queued, across all stints (including retry
    /// backoff).
    pub queue_seconds: f64,
    /// Seconds spent solving, across all attempts.
    pub run_seconds: f64,
    /// Preprocessing seconds this job actually paid (zero on a cache
    /// hit — the amortization the serving layer exists for).
    pub preprocess_seconds: f64,
    /// How many times the job was preempted.
    pub preemptions: usize,
    /// How many retry attempts ran after the first (transient-failure
    /// recovery only).
    pub retries: u32,
    /// Total solver iterations across all slices (completed jobs only).
    pub iterations: usize,
}

/// A finished job: its report plus the response or error.
#[derive(Debug)]
pub struct JobResult {
    /// Accounting.
    pub report: JobReport,
    /// The reconstruction output, or why it failed.
    pub outcome: Result<ReconResponse, JobError>,
    /// The job's retained checkpoint sink, when its terminal state kept
    /// one ([`JobStatus::TimedOut`], or [`JobStatus::Stopped`] under
    /// [`Shutdown::CheckpointAndStop`]). Feed it back through
    /// [`JobSpec::resume_from`] to continue the solve bit-identically.
    pub checkpoint: Option<Arc<MemoryCheckpointSink>>,
}

/// Runtime sizing and supervision knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Plan-cache capacity (built reconstructors kept alive).
    pub cache_capacity: usize,
    /// Admission-control bound on queued measurement bytes.
    pub max_queued_bytes: usize,
    /// Deadline-aware admission floor: a submission whose deadline is
    /// below this is refused up front (zero accepts any deadline).
    pub min_deadline: Duration,
    /// Circuit-breaker policy (default: disabled).
    pub breaker: BreakerConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            cache_capacity: 8,
            max_queued_bytes: 256 << 20,
            min_deadline: Duration::ZERO,
            breaker: BreakerConfig::default(),
        }
    }
}

struct QueuedJob {
    id: JobId,
    seq: u64,
    spec: JobSpec,
    bytes: usize,
    enqueued: Instant,
    /// Retry backoff: not schedulable until `since.elapsed() >= delay`.
    delay: Option<(Instant, Duration)>,
    /// Absolute deadline: lapses when `since.elapsed() >= budget`.
    deadline: Option<(Instant, Duration)>,
    queue_seconds: f64,
    run_seconds: f64,
    preemptions: usize,
    retries: u32,
    resumed: bool,
    cache_hit: Option<bool>,
    sink: Arc<MemoryCheckpointSink>,
}

impl QueuedJob {
    fn delay_remaining(&self) -> Duration {
        match self.delay {
            Some((since, delay)) => delay.saturating_sub(since.elapsed()),
            None => Duration::ZERO,
        }
    }

    /// Strictly greater: a zero-budget job still gets scheduled once and
    /// is timed out by the in-run check at its first iteration boundary
    /// (which is also what keeps the zero-deadline path reachable under
    /// the model's virtual clock).
    fn deadline_lapsed(&self) -> bool {
        self.deadline
            .is_some_and(|(since, budget)| since.elapsed() > budget)
    }
}

struct Running {
    priority: u8,
    ctrl: Arc<RunControl>,
}

struct State {
    queue: Vec<QueuedJob>,
    queued_bytes: usize,
    running: Option<Running>,
    statuses: HashMap<u64, JobStatus>,
    results: HashMap<u64, JobResult>,
    next_seq: u64,
    shutdown: Option<Shutdown>,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the scheduler (new job, shutdown).
    work_cv: Condvar,
    /// Wakes waiters (job finished).
    done_cv: Condvar,
    /// Never acquired while `state` is held (and vice versa): the
    /// breaker is consulted before, and updated after, state sections.
    breaker: Mutex<Breaker>,
    cache: PlanCache,
    metrics: Metrics,
    max_queued_bytes: usize,
    min_deadline: Duration,
}

/// The serving runtime: a plan cache plus one supervised scheduler
/// thread draining a priority queue of [`JobSpec`]s. Submissions are
/// thread-safe; the scheduler runs one job at a time (the worker pool
/// parallelizes within a solve), preempts it when a strictly higher
/// priority arrives, and supervises every job for panics, deadline
/// overruns, and retryable transient failures.
pub struct JobRuntime {
    shared: Arc<Shared>,
    worker: Option<thread::JoinHandle<()>>,
}

impl JobRuntime {
    /// A runtime recording into a fresh collecting metrics registry.
    pub fn new(config: RuntimeConfig) -> Self {
        JobRuntime::with_metrics(config, Metrics::collecting())
    }

    /// A runtime recording into a shared metrics registry. The plan
    /// cache and every cached reconstructor share the same handle, so
    /// one snapshot covers `cache/*`, `job/*`, `breaker/*`, and the
    /// kernel/solver families.
    pub fn with_metrics(config: RuntimeConfig, metrics: Metrics) -> Self {
        metrics.gauge_set(BREAKER_STATE, 0.0);
        let shared = Arc::new(Shared {
            state: Mutex::named(
                "serve/job/state",
                State {
                    queue: Vec::new(),
                    queued_bytes: 0,
                    running: None,
                    statuses: HashMap::new(),
                    results: HashMap::new(),
                    next_seq: 0,
                    shutdown: None,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            breaker: Mutex::named("serve/job/breaker", Breaker::new(config.breaker)),
            cache: PlanCache::with_metrics(config.cache_capacity, metrics.clone()),
            metrics,
            max_queued_bytes: config.max_queued_bytes,
            min_deadline: config.min_deadline,
        });
        let worker_shared = shared.clone();
        let worker = thread::spawn(move || scheduler_loop(&worker_shared));
        JobRuntime {
            shared,
            worker: Some(worker),
        }
    }

    /// Queue a job. Returns its handle, or a [`SubmitError`] when
    /// admission control, the circuit breaker, or shutdown refuses it. A
    /// submission with strictly higher priority than the running job
    /// asks it to preempt at its next iteration boundary.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        {
            let st = self.shared.state.lock();
            if st.shutdown.is_some() {
                return Err(SubmitError::ShuttingDown);
            }
        }
        if let Some(deadline) = spec.deadline {
            if deadline < self.shared.min_deadline {
                self.shared.metrics.counter_add(JOB_REJECTED, 1);
                return Err(SubmitError::DeadlineTooTight {
                    deadline,
                    min_deadline: self.shared.min_deadline,
                });
            }
        }
        {
            let mut breaker = self.shared.breaker.lock();
            let admitted = breaker.admit();
            self.shared
                .metrics
                .gauge_set(BREAKER_STATE, breaker.state().gauge());
            if let Err(consecutive_failures) = admitted {
                self.shared.metrics.counter_add(JOB_SHED, 1);
                return Err(SubmitError::Degraded {
                    consecutive_failures,
                });
            }
        }
        let bytes = spec.request.input.data_bytes();
        let mut st = self.shared.state.lock();
        if st.shutdown.is_some() {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queued_bytes + bytes > self.shared.max_queued_bytes {
            self.shared.metrics.counter_add(JOB_REJECTED, 1);
            return Err(SubmitError::QueueFull {
                queued_bytes: st.queued_bytes,
                incoming_bytes: bytes,
                limit: self.shared.max_queued_bytes,
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let id = JobId(seq);
        if let Some(running) = &st.running {
            if spec.priority > running.priority {
                running.ctrl.request_preempt();
            }
        }
        let now = Instant::now();
        let sink = spec
            .resume_from
            .clone()
            .unwrap_or_else(|| Arc::new(MemoryCheckpointSink::new()));
        let resumed = !sink.is_empty();
        st.queued_bytes += bytes;
        st.statuses.insert(id.0, JobStatus::Queued);
        st.queue.push(QueuedJob {
            id,
            seq,
            deadline: spec.deadline.map(|budget| (now, budget)),
            spec,
            bytes,
            enqueued: now,
            delay: None,
            queue_seconds: 0.0,
            run_seconds: 0.0,
            preemptions: 0,
            retries: 0,
            resumed,
            cache_hit: None,
            sink,
        });
        self.shared.metrics.counter_add(JOB_SUBMITTED, 1);
        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// Where the job currently is (`None` for an unknown id, including
    /// ids whose result was already taken by [`wait`](Self::wait)).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.shared.state.lock();
        st.statuses.get(&id.0).copied()
    }

    /// Block until the job finishes, then take its result. `None` for an
    /// unknown id, a result already taken, or a job orphaned by a dead
    /// scheduler thread (the waiter re-checks scheduler liveness instead
    /// of blocking forever).
    pub fn wait(&self, id: JobId) -> Option<JobResult> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = st.results.remove(&id.0) {
                return Some(result);
            }
            match st.statuses.get(&id.0) {
                Some(s) if !s.is_terminal() => {
                    if self.worker_dead() {
                        return None;
                    }
                    st = self.shared.done_cv.wait_timeout(st, WAITER_POLL).0;
                }
                _ => return None,
            }
        }
    }

    /// [`wait`](Self::wait) with a bound: `None` when the job has not
    /// reached a terminal state within `timeout` (its result stays
    /// claimable), for an unknown id, or for an orphaned job.
    pub fn wait_timeout(&self, id: JobId, timeout: Duration) -> Option<JobResult> {
        let start = Instant::now();
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = st.results.remove(&id.0) {
                return Some(result);
            }
            match st.statuses.get(&id.0) {
                Some(s) if !s.is_terminal() => {
                    let remaining = timeout.saturating_sub(start.elapsed());
                    if remaining.is_zero() || self.worker_dead() {
                        return None;
                    }
                    st = self
                        .shared
                        .done_cv
                        .wait_timeout(st, remaining.min(WAITER_POLL))
                        .0;
                }
                _ => return None,
            }
        }
    }

    /// Whether the scheduler thread is gone (shutdown already joined it,
    /// or it died). Non-terminal jobs can then never finish.
    fn worker_dead(&self) -> bool {
        match &self.worker {
            Some(worker) => worker.is_finished(),
            None => true,
        }
    }

    /// The plan cache backing this runtime.
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// The shared metrics handle.
    pub fn metrics_handle(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Snapshot of everything recorded so far (`cache/*`, `job/*`,
    /// `breaker/*`, and the kernel/solver families of every cached
    /// reconstructor).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Stop accepting jobs, drain the queue (running and queued jobs all
    /// finish), and return every untaken result sorted by job id.
    /// Equivalent to [`shutdown`](Self::shutdown) with
    /// [`Shutdown::Drain`].
    pub fn finish(self) -> Vec<JobResult> {
        self.shutdown(Shutdown::Drain)
    }

    /// Wind the runtime down in the given [`Shutdown`] mode and return
    /// every untaken result sorted by job id. Non-drain modes stop the
    /// running job at its next iteration boundary and report unfinished
    /// jobs as [`JobStatus::Stopped`];
    /// [`CheckpointAndStop`](Shutdown::CheckpointAndStop) retains their
    /// checkpoints in [`JobResult::checkpoint`] for later resume, while
    /// [`Abort`](Shutdown::Abort) discards all in-flight state.
    pub fn shutdown(mut self, mode: Shutdown) -> Vec<JobResult> {
        self.begin_shutdown(mode);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let mut st = self.shared.state.lock();
        let mut results: Vec<JobResult> = st.results.drain().map(|(_, r)| r).collect();
        results.sort_by_key(|r| r.report.id);
        results
    }

    fn begin_shutdown(&self, mode: Shutdown) {
        let mut st = self.shared.state.lock();
        if st.shutdown.is_none() {
            st.shutdown = Some(mode);
        }
        if mode != Shutdown::Drain {
            if let Some(running) = &st.running {
                running.ctrl.request_preempt();
            }
        }
        self.shared.work_cv.notify_all();
    }
}

impl Drop for JobRuntime {
    fn drop(&mut self) {
        self.begin_shutdown(Shutdown::Drain);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Index of the next runnable job: highest priority, then lowest
/// sequence number (FIFO within a priority level). Jobs parked in a
/// retry backoff are not runnable yet.
fn pick_index(queue: &[QueuedJob]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, job) in queue.iter().enumerate() {
        if !job.delay_remaining().is_zero() {
            continue;
        }
        best = Some(match best {
            None => i,
            Some(b) => {
                let cur = &queue[b];
                let better = job.spec.priority > cur.spec.priority
                    || (job.spec.priority == cur.spec.priority && job.seq < cur.seq);
                if better {
                    i
                } else {
                    b
                }
            }
        });
    }
    best
}

/// Lowest-sequence queued job whose deadline has already lapsed (shed
/// before wasting a solve on it).
fn expired_index(queue: &[QueuedJob]) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|(_, j)| j.deadline_lapsed())
        .min_by_key(|(_, j)| j.seq)
        .map(|(i, _)| i)
}

/// What the scheduler decided to do next, chosen under the state lock
/// and executed outside it.
enum Action {
    Run(QueuedJob),
    /// Deadline lapsed while queued; finish as timed out without
    /// running.
    Shed(QueuedJob),
    /// Non-drain shutdown: everything still queued stops without
    /// running.
    StopAll(Vec<QueuedJob>, Shutdown),
    Exit,
}

fn next_action(shared: &Shared) -> Action {
    let mut st = shared.state.lock();
    loop {
        if let Some(mode) = st.shutdown {
            if mode != Shutdown::Drain {
                let stopped: Vec<QueuedJob> = st.queue.drain(..).collect();
                let bytes: usize = stopped.iter().map(|j| j.bytes).sum();
                st.queued_bytes = st.queued_bytes.saturating_sub(bytes);
                return Action::StopAll(stopped, mode);
            }
        }
        if let Some(i) = expired_index(&st.queue) {
            let job = st.queue.remove(i);
            st.queued_bytes = st.queued_bytes.saturating_sub(job.bytes);
            return Action::Shed(job);
        }
        if let Some(i) = pick_index(&st.queue) {
            let job = st.queue.remove(i);
            st.queued_bytes = st.queued_bytes.saturating_sub(job.bytes);
            return Action::Run(job);
        }
        if st.queue.is_empty() {
            if st.shutdown.is_some() {
                return Action::Exit;
            }
            st = shared.work_cv.wait(st);
        } else {
            // Only backoff-parked jobs remain: sleep until the earliest
            // becomes runnable (or a submission/shutdown wakes us).
            let earliest = st
                .queue
                .iter()
                .map(QueuedJob::delay_remaining)
                .min()
                .unwrap_or(Duration::ZERO);
            st = shared
                .work_cv
                .wait_timeout(st, earliest.max(Duration::from_nanos(1)))
                .0;
        }
    }
}

fn scheduler_loop(shared: &Shared) {
    loop {
        match next_action(shared) {
            Action::Exit => return,
            Action::StopAll(jobs, mode) => {
                for mut job in jobs {
                    job.queue_seconds += job.enqueued.elapsed().as_secs_f64();
                    let checkpointed = mode == Shutdown::CheckpointAndStop && !job.sink.is_empty();
                    finish_job(
                        shared,
                        job,
                        Err(JobError::Stopped { checkpointed }),
                        checkpointed,
                    );
                }
                return;
            }
            Action::Shed(mut job) => {
                job.queue_seconds += job.enqueued.elapsed().as_secs_f64();
                let deadline = job.deadline.map(|(_, d)| d).unwrap_or_default();
                let checkpointed = !job.sink.is_empty();
                finish_job(
                    shared,
                    job,
                    Err(JobError::TimedOut {
                        deadline,
                        checkpointed,
                    }),
                    checkpointed,
                );
            }
            Action::Run(job) => run_job(shared, job),
        }
    }
}

fn run_job(shared: &Shared, mut job: QueuedJob) {
    job.queue_seconds += job.enqueued.elapsed().as_secs_f64();
    let ctrl = Arc::new(RunControl::new());
    if job.preemptions == 0 && job.retries == 0 {
        if let Some(boundary) = job.spec.preempt_at {
            ctrl.preempt_at(boundary);
        }
    }
    if let Some((since, budget)) = job.deadline {
        ctrl.set_deadline_check(move || since.elapsed() >= budget);
    }
    {
        let mut st = shared.state.lock();
        st.statuses.insert(job.id.0, JobStatus::Running);
        st.running = Some(Running {
            priority: job.spec.priority,
            ctrl: ctrl.clone(),
        });
    }
    if job.resumed {
        shared.metrics.counter_add(JOB_RESUMED, 1);
    }

    // Plan build under panic isolation: a panicking preprocessor fails
    // this job alone (the facade cache lock recovers from poisoning).
    let built = catch_unwind(AssertUnwindSafe(|| {
        shared.cache.get_detailed(&job.spec.plan)
    }));
    let (rec, hit) = match built {
        Err(payload) => {
            finish_job(
                shared,
                job,
                Err(JobError::Panicked {
                    // `as_ref` reaches the payload itself — a plain
                    // `&payload` would unsize the Box and defeat the
                    // downcasts.
                    message: panic_message(payload.as_ref()),
                }),
                false,
            );
            return;
        }
        Ok(Err(e)) => {
            finish_job(
                shared,
                job,
                Err(JobError::Recon(ReconError::from(e))),
                false,
            );
            return;
        }
        Ok(Ok(v)) => v,
    };
    if job.cache_hit.is_none() {
        job.cache_hit = Some(hit);
    }

    // The job-private checkpoint is the preemption and retry substrate:
    // cadence from the spec (0 = snapshot only on preemption), resume
    // whenever a snapshot exists from an earlier stint.
    let mut req: ReconRequest = job.spec.request.clone();
    let resume = job.resumed && !job.sink.is_empty();
    req.checkpoint =
        Some(CheckpointPolicy::new(job.sink.clone(), job.spec.checkpoint_every).resume(resume));

    let t = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| {
        if let Some(message) = &job.spec.chaos_panic {
            // lint: allow(no-panic) the chaos drill panics on purpose, caught just above
            panic!("{}", message.clone());
        }
        rec.run_controlled(&req, &ctrl)
    }));
    job.run_seconds += t.elapsed().as_secs_f64();

    match run {
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            finish_job(shared, job, Err(JobError::Panicked { message }), false);
        }
        Ok(Ok(RunOutcome::Completed(resp))) => finish_job(shared, job, Ok(resp), false),
        Ok(Ok(RunOutcome::Preempted { .. })) => {
            if ctrl.deadline_exceeded() {
                // The preemption snapshot is the retained checkpoint.
                let deadline = job.deadline.map(|(_, d)| d).unwrap_or_default();
                finish_job(
                    shared,
                    job,
                    Err(JobError::TimedOut {
                        deadline,
                        checkpointed: true,
                    }),
                    true,
                );
                return;
            }
            let stop_mode = {
                let st = shared.state.lock();
                st.shutdown.filter(|m| *m != Shutdown::Drain)
            };
            if let Some(mode) = stop_mode {
                let checkpointed = mode == Shutdown::CheckpointAndStop;
                finish_job(
                    shared,
                    job,
                    Err(JobError::Stopped { checkpointed }),
                    checkpointed,
                );
                return;
            }
            shared.metrics.counter_add(JOB_PREEMPTED, 1);
            job.preemptions += 1;
            job.resumed = true;
            requeue(shared, job, None);
        }
        Ok(Err(e)) => {
            let err = JobError::Recon(e);
            let retry = job
                .spec
                .retry
                .filter(|policy| job.retries < policy.max_retries && is_retryable(&err));
            match retry {
                Some(policy) => {
                    let delay = policy.backoff(job.seq, job.retries + 1);
                    shared.metrics.counter_add(JOB_RETRIES, 1);
                    job.retries += 1;
                    job.resumed = !job.sink.is_empty();
                    requeue(shared, job, Some(delay));
                }
                None => finish_job(shared, job, Err(err), false),
            }
        }
    }
}

fn requeue(shared: &Shared, mut job: QueuedJob, delay: Option<Duration>) {
    let now = Instant::now();
    job.enqueued = now;
    job.delay = delay.map(|d| (now, d));
    let mut st = shared.state.lock();
    st.running = None;
    st.queued_bytes += job.bytes;
    st.statuses.insert(job.id.0, JobStatus::Queued);
    st.queue.push(job);
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn finish_job(
    shared: &Shared,
    job: QueuedJob,
    outcome: Result<ReconResponse, JobError>,
    keep_checkpoint: bool,
) {
    let cache_hit = job.cache_hit.unwrap_or(false);
    let report = JobReport {
        id: job.id,
        name: job.spec.name.clone(),
        priority: job.spec.priority,
        plan_fingerprint: job.spec.plan.key().fingerprint(),
        cache_hit,
        queue_seconds: job.queue_seconds,
        run_seconds: job.run_seconds,
        preprocess_seconds: match &outcome {
            Ok(resp) if !cache_hit => resp.preprocess_seconds,
            _ => 0.0,
        },
        preemptions: job.preemptions,
        retries: job.retries,
        iterations: outcome.as_ref().map(|r| r.iterations()).unwrap_or(0),
    };
    let status = match &outcome {
        Ok(_) => {
            shared.metrics.counter_add(JOB_COMPLETED, 1);
            breaker_record(shared, true);
            JobStatus::Completed
        }
        Err(JobError::Panicked { .. }) => {
            shared.metrics.counter_add(JOB_FAILED, 1);
            shared.metrics.counter_add(JOB_PANICS, 1);
            breaker_record(shared, false);
            JobStatus::Failed
        }
        Err(JobError::Recon(_)) => {
            shared.metrics.counter_add(JOB_FAILED, 1);
            breaker_record(shared, false);
            JobStatus::Failed
        }
        // Deadline overruns and shutdown stops are not runtime-health
        // failures: they don't feed the breaker.
        Err(JobError::TimedOut { .. }) => {
            shared.metrics.counter_add(JOB_TIMEOUTS, 1);
            JobStatus::TimedOut
        }
        Err(JobError::Stopped { .. }) => {
            shared.metrics.counter_add(JOB_STOPPED, 1);
            JobStatus::Stopped
        }
    };
    shared
        .metrics
        .timer_observe(JOB_QUEUE_SECONDS, report.queue_seconds);
    shared
        .metrics
        .timer_observe(JOB_RUN_SECONDS, report.run_seconds);
    let checkpoint = if keep_checkpoint && !job.sink.is_empty() {
        Some(job.sink.clone())
    } else {
        None
    };
    let mut st = shared.state.lock();
    st.running = None;
    st.statuses.insert(job.id.0, status);
    st.results.insert(
        job.id.0,
        JobResult {
            report,
            outcome,
            checkpoint,
        },
    );
    shared.done_cv.notify_all();
}

fn breaker_record(shared: &Shared, success: bool) {
    let mut breaker = shared.breaker.lock();
    if success {
        breaker.record_success();
    } else if breaker.record_failure() {
        shared.metrics.counter_add(BREAKER_TRIPS, 1);
    }
    shared
        .metrics
        .gauge_set(BREAKER_STATE, breaker.state().gauge());
}

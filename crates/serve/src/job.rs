//! The job runtime: a multi-producer priority queue and a scheduler
//! thread draining it through the plan cache, with checkpoint-based
//! preemption.
//!
//! Scheduling policy: highest priority first, FIFO within a priority.
//! When a job with strictly higher priority is submitted while a
//! lower-priority job is running, the runtime requests preemption — the
//! running solve snapshots into a job-private in-memory checkpoint at
//! its next iteration boundary and goes back to the queue; when it is
//! scheduled again it resumes from that snapshot, and its final output
//! is bit-identical to an uninterrupted run (the PR 5 checkpoint
//! guarantee). Admission control rejects submissions once the queued
//! measurement bytes would exceed the configured bound.

use std::collections::HashMap;

use xct_model::sync::{Arc, Condvar, Mutex};
use xct_model::thread;
use xct_model::time::Instant;

use memxct::{CheckpointPolicy, ReconError, ReconRequest, ReconResponse, RunControl, RunOutcome};
use xct_obs::{
    Metrics, MetricsSnapshot, JOB_COMPLETED, JOB_FAILED, JOB_PREEMPTED, JOB_QUEUE_SECONDS,
    JOB_REJECTED, JOB_RESUMED, JOB_RUN_SECONDS, JOB_SUBMITTED,
};
use xct_runtime::MemoryCheckpointSink;

use crate::cache::{PlanCache, PlanSpec};

/// Why a job could not be executed (the request-level error of
/// [`memxct::Reconstructor::run`], which also covers plan build
/// failures surfaced by the cache).
pub type JobError = ReconError;

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(
    /// Monotonic submission number (also the tiebreaker within a
    /// priority level).
    pub u64,
);

/// One unit of work for the runtime: which plan to solve on, the request
/// itself, and how urgently.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label carried into the report.
    pub name: String,
    /// Plan the job solves on (cache key).
    pub plan: PlanSpec,
    /// The reconstruction request. Its `checkpoint` field is replaced by
    /// a job-private in-memory policy (the preemption substrate); route
    /// durable checkpointing through [`memxct::Reconstructor::run`]
    /// directly if you need it.
    pub request: ReconRequest,
    /// Scheduling priority (higher runs first; a strictly higher arrival
    /// preempts the running job).
    pub priority: u8,
    /// Deterministic self-preemption drill: checkpoint and yield at this
    /// iteration boundary on the first attempt (used by the serve-smoke
    /// CI job to exercise preempt/resume without timing races).
    pub preempt_at: Option<usize>,
}

impl JobSpec {
    /// A priority-0 job with no preemption drill.
    pub fn new(name: impl Into<String>, plan: PlanSpec, request: ReconRequest) -> Self {
        JobSpec {
            name: name.into(),
            plan,
            request,
            priority: 0,
            preempt_at: None,
        }
    }

    /// Set the scheduling priority.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Arm the deterministic self-preemption drill.
    pub fn preempt_at(mut self, boundary: usize) -> Self {
        self.preempt_at = Some(boundary);
        self
    }
}

/// Where a job currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue (first time or after a preemption).
    Queued,
    /// Currently solving.
    Running,
    /// Finished successfully; the result is available.
    Completed,
    /// Finished with an error; the result carries it.
    Failed,
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: accepting the job would push the queued
    /// measurement bytes past the bound.
    QueueFull {
        /// Bytes already queued.
        queued_bytes: usize,
        /// Bytes the rejected job carries.
        incoming_bytes: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The runtime is shutting down and no longer accepts jobs.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull {
                queued_bytes,
                incoming_bytes,
                limit,
            } => write!(
                f,
                "queue full: {queued_bytes} bytes queued + {incoming_bytes} incoming \
                 exceeds the {limit}-byte admission bound"
            ),
            SubmitError::ShuttingDown => write!(f, "runtime is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Accounting for one finished job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's handle.
    pub id: JobId,
    /// Label from the spec.
    pub name: String,
    /// Scheduling priority.
    pub priority: u8,
    /// Stable digest of the plan key the job solved on.
    pub plan_fingerprint: u64,
    /// Whether the first attempt found its plan already cached (no
    /// preprocessing ran for this job).
    pub cache_hit: bool,
    /// Seconds spent queued, across all stints.
    pub queue_seconds: f64,
    /// Seconds spent solving, across all attempts.
    pub run_seconds: f64,
    /// Preprocessing seconds this job actually paid (zero on a cache
    /// hit — the amortization the serving layer exists for).
    pub preprocess_seconds: f64,
    /// How many times the job was preempted.
    pub preemptions: usize,
    /// Total solver iterations across all slices (completed jobs only).
    pub iterations: usize,
}

/// A finished job: its report plus the response or error.
#[derive(Debug)]
pub struct JobResult {
    /// Accounting.
    pub report: JobReport,
    /// The reconstruction output, or why it failed.
    pub outcome: Result<ReconResponse, JobError>,
}

/// Runtime sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Plan-cache capacity (built reconstructors kept alive).
    pub cache_capacity: usize,
    /// Admission-control bound on queued measurement bytes.
    pub max_queued_bytes: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            cache_capacity: 8,
            max_queued_bytes: 256 << 20,
        }
    }
}

struct QueuedJob {
    id: JobId,
    seq: u64,
    spec: JobSpec,
    bytes: usize,
    enqueued: Instant,
    queue_seconds: f64,
    run_seconds: f64,
    preemptions: usize,
    resumed: bool,
    cache_hit: Option<bool>,
    sink: Arc<MemoryCheckpointSink>,
}

struct Running {
    priority: u8,
    ctrl: Arc<RunControl>,
}

struct State {
    queue: Vec<QueuedJob>,
    queued_bytes: usize,
    running: Option<Running>,
    statuses: HashMap<u64, JobStatus>,
    results: HashMap<u64, JobResult>,
    next_seq: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the scheduler (new job, shutdown).
    work_cv: Condvar,
    /// Wakes waiters (job finished).
    done_cv: Condvar,
    cache: PlanCache,
    metrics: Metrics,
    max_queued_bytes: usize,
}

/// The serving runtime: a plan cache plus one scheduler thread draining
/// a priority queue of [`JobSpec`]s. Submissions are thread-safe; the
/// scheduler runs one job at a time (the worker pool parallelizes within
/// a solve) and preempts it when a strictly higher priority arrives.
pub struct JobRuntime {
    shared: Arc<Shared>,
    worker: Option<thread::JoinHandle<()>>,
}

impl JobRuntime {
    /// A runtime recording into a fresh collecting metrics registry.
    pub fn new(config: RuntimeConfig) -> Self {
        JobRuntime::with_metrics(config, Metrics::collecting())
    }

    /// A runtime recording into a shared metrics registry. The plan
    /// cache and every cached reconstructor share the same handle, so
    /// one snapshot covers `cache/*`, `job/*`, and the kernel/solver
    /// families.
    pub fn with_metrics(config: RuntimeConfig, metrics: Metrics) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::named(
                "serve/job/state",
                State {
                    queue: Vec::new(),
                    queued_bytes: 0,
                    running: None,
                    statuses: HashMap::new(),
                    results: HashMap::new(),
                    next_seq: 0,
                    shutdown: false,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache: PlanCache::with_metrics(config.cache_capacity, metrics.clone()),
            metrics,
            max_queued_bytes: config.max_queued_bytes,
        });
        let worker_shared = shared.clone();
        let worker = thread::spawn(move || scheduler_loop(&worker_shared));
        JobRuntime {
            shared,
            worker: Some(worker),
        }
    }

    /// Queue a job. Returns its handle, or a [`SubmitError`] when
    /// admission control refuses it or the runtime is shutting down. A
    /// submission with strictly higher priority than the running job
    /// asks it to preempt at its next iteration boundary.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let bytes = spec.request.input.data_bytes();
        let mut st = self.shared.state.lock();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queued_bytes + bytes > self.shared.max_queued_bytes {
            self.shared.metrics.counter_add(JOB_REJECTED, 1);
            return Err(SubmitError::QueueFull {
                queued_bytes: st.queued_bytes,
                incoming_bytes: bytes,
                limit: self.shared.max_queued_bytes,
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let id = JobId(seq);
        if let Some(running) = &st.running {
            if spec.priority > running.priority {
                running.ctrl.request_preempt();
            }
        }
        st.queued_bytes += bytes;
        st.statuses.insert(id.0, JobStatus::Queued);
        st.queue.push(QueuedJob {
            id,
            seq,
            spec,
            bytes,
            enqueued: Instant::now(),
            queue_seconds: 0.0,
            run_seconds: 0.0,
            preemptions: 0,
            resumed: false,
            cache_hit: None,
            sink: Arc::new(MemoryCheckpointSink::new()),
        });
        self.shared.metrics.counter_add(JOB_SUBMITTED, 1);
        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// Where the job currently is (`None` for an unknown id, including
    /// ids whose result was already taken by [`wait`](Self::wait)).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.shared.state.lock();
        st.statuses.get(&id.0).copied()
    }

    /// Block until the job finishes, then take its result. `None` for an
    /// unknown id or a result already taken.
    pub fn wait(&self, id: JobId) -> Option<JobResult> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = st.results.remove(&id.0) {
                return Some(result);
            }
            match st.statuses.get(&id.0) {
                Some(JobStatus::Queued) | Some(JobStatus::Running) => {
                    st = self.shared.done_cv.wait(st);
                }
                _ => return None,
            }
        }
    }

    /// The plan cache backing this runtime.
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// The shared metrics handle.
    pub fn metrics_handle(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Snapshot of everything recorded so far (`cache/*`, `job/*`, and
    /// the kernel/solver families of every cached reconstructor).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Stop accepting jobs, drain the queue (running and queued jobs all
    /// finish), and return every untaken result sorted by job id.
    pub fn finish(mut self) -> Vec<JobResult> {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let mut st = self.shared.state.lock();
        let mut results: Vec<JobResult> = st.results.drain().map(|(_, r)| r).collect();
        results.sort_by_key(|r| r.report.id);
        results
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.state.lock();
        st.shutdown = true;
        self.shared.work_cv.notify_all();
    }
}

impl Drop for JobRuntime {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Index of the next job to run: highest priority, then lowest sequence
/// number (FIFO within a priority level).
fn pick_index(queue: &[QueuedJob]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, job) in queue.iter().enumerate() {
        best = Some(match best {
            None => i,
            Some(b) => {
                let cur = &queue[b];
                let better = job.spec.priority > cur.spec.priority
                    || (job.spec.priority == cur.spec.priority && job.seq < cur.seq);
                if better {
                    i
                } else {
                    b
                }
            }
        });
    }
    best
}

fn scheduler_loop(shared: &Shared) {
    loop {
        // Pick the next job, or exit once shut down with an empty queue.
        let mut job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(i) = pick_index(&st.queue) {
                    break st.queue.remove(i);
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_cv.wait(st);
            }
        };
        job.queue_seconds += job.enqueued.elapsed().as_secs_f64();
        let ctrl = Arc::new(RunControl::new());
        if job.preemptions == 0 {
            if let Some(boundary) = job.spec.preempt_at {
                ctrl.preempt_at(boundary);
            }
        }
        {
            let mut st = shared.state.lock();
            st.queued_bytes = st.queued_bytes.saturating_sub(job.bytes);
            st.statuses.insert(job.id.0, JobStatus::Running);
            st.running = Some(Running {
                priority: job.spec.priority,
                ctrl: ctrl.clone(),
            });
        }
        if job.resumed {
            shared.metrics.counter_add(JOB_RESUMED, 1);
        }

        let (rec, hit) = match shared.cache.get_detailed(&job.spec.plan) {
            Ok(v) => v,
            Err(e) => {
                finish_job(shared, job, Err(ReconError::from(e)));
                continue;
            }
        };
        if job.cache_hit.is_none() {
            job.cache_hit = Some(hit);
        }

        // The job-private checkpoint is the preemption substrate: no
        // cadence (snapshot only on preemption), resume after one.
        let mut req: ReconRequest = job.spec.request.clone();
        req.checkpoint = Some(CheckpointPolicy::new(job.sink.clone(), 0).resume(job.resumed));

        let t = Instant::now();
        let outcome = rec.run_controlled(&req, &ctrl);
        job.run_seconds += t.elapsed().as_secs_f64();

        match outcome {
            Ok(RunOutcome::Completed(resp)) => finish_job(shared, job, Ok(resp)),
            Ok(RunOutcome::Preempted { .. }) => {
                shared.metrics.counter_add(JOB_PREEMPTED, 1);
                job.preemptions += 1;
                job.resumed = true;
                job.enqueued = Instant::now();
                let mut st = shared.state.lock();
                st.running = None;
                st.queued_bytes += job.bytes;
                st.statuses.insert(job.id.0, JobStatus::Queued);
                st.queue.push(job);
            }
            Err(e) => finish_job(shared, job, Err(e)),
        }
    }
}

fn finish_job(shared: &Shared, job: QueuedJob, outcome: Result<ReconResponse, JobError>) {
    let cache_hit = job.cache_hit.unwrap_or(false);
    let report = JobReport {
        id: job.id,
        name: job.spec.name.clone(),
        priority: job.spec.priority,
        plan_fingerprint: job.spec.plan.key().fingerprint(),
        cache_hit,
        queue_seconds: job.queue_seconds,
        run_seconds: job.run_seconds,
        preprocess_seconds: match &outcome {
            Ok(resp) if !cache_hit => resp.preprocess_seconds,
            _ => 0.0,
        },
        preemptions: job.preemptions,
        iterations: outcome.as_ref().map(|r| r.iterations()).unwrap_or(0),
    };
    let status = if outcome.is_ok() {
        shared.metrics.counter_add(JOB_COMPLETED, 1);
        JobStatus::Completed
    } else {
        shared.metrics.counter_add(JOB_FAILED, 1);
        JobStatus::Failed
    };
    shared
        .metrics
        .timer_observe(JOB_QUEUE_SECONDS, report.queue_seconds);
    shared
        .metrics
        .timer_observe(JOB_RUN_SECONDS, report.run_seconds);
    let mut st = shared.state.lock();
    st.running = None;
    st.statuses.insert(job.id.0, status);
    st.results.insert(job.id.0, JobResult { report, outcome });
    shared.done_cv.notify_all();
}

//! Sinogram corrections applied before reconstruction.
//!
//! Real synchrotron measurements (the paper's RDS datasets come from APS
//! beamlines) are not the ideal line integrals of §2.1: the rotation axis
//! is rarely centred on the detector, and per-channel detector gain errors
//! print vertical stripes in the sinogram that reconstruct as rings. Both
//! corrections are standard steps in production pipelines (TomoPy et al.)
//! and are needed before the solver sees the data.

use crate::sino::Sinogram;

/// Estimate the centre-of-rotation offset (in channels) from a sinogram.
///
/// In parallel-beam geometry the projection at angle π is the mirror of
/// the one at 0: `p_π(s) = p_0(−s)`. With the rotation axis off-centre by
/// `δ`, the mirrored pair is displaced by `2δ`. We cross-correlate the
/// first projection row with the reversed last row (θ = π·(M−1)/M ≈ π)
/// and locate the peak with sub-channel (parabolic) interpolation.
pub fn estimate_center_shift(sino: &Sinogram) -> f64 {
    let scan = sino.scan();
    let n = scan.num_channels() as usize;
    let m = scan.num_projections();
    assert!(m >= 2, "need at least two projections");
    // in-range: channel index c < num_channels, a u32 domain
    let first: Vec<f64> = (0..n).map(|c| sino.get(0, c as u32) as f64).collect();
    let last_rev: Vec<f64> = (0..n)
        // in-range: channel index < num_channels, a u32 domain
        .map(|c| sino.get(m - 1, (n - 1 - c) as u32) as f64)
        .collect();

    // Full cross-correlation over lags −n/2..n/2.
    let max_lag = (n / 2) as i64;
    let mut best = (f64::NEG_INFINITY, 0i64);
    let mut scores = std::collections::HashMap::new();
    for lag in -max_lag..=max_lag {
        let mut acc = 0f64;
        for i in 0..n as i64 {
            let j = i + lag;
            if j >= 0 && j < n as i64 {
                acc += first[i as usize] * last_rev[j as usize];
            }
        }
        scores.insert(lag, acc);
        if acc > best.0 {
            best = (acc, lag);
        }
    }
    let lag = best.1;
    // Parabolic refinement around the integer peak.
    let (ym, y0, yp) = (
        *scores.get(&(lag - 1)).unwrap_or(&best.0),
        best.0,
        *scores.get(&(lag + 1)).unwrap_or(&best.0),
    );
    let denom = ym - 2.0 * y0 + yp;
    let frac = if denom.abs() > 1e-12 {
        0.5 * (ym - yp) / denom
    } else {
        0.0
    };
    // The correlation peaks at lag = 2δ (both rows are displaced by δ in
    // opposite directions after mirroring).
    (lag as f64 + frac) / 2.0
}

/// Resample every projection row by `shift` channels (linear
/// interpolation, zero beyond the detector edge) — used to re-centre a
/// sinogram whose rotation axis is off by `shift`.
pub fn shift_sinogram(sino: &Sinogram, shift: f64) -> Sinogram {
    let scan = sino.scan();
    let n = scan.num_channels() as usize;
    let mut out = vec![0f32; sino.data().len()];
    for p in 0..scan.num_projections() {
        for c in 0..n {
            // Sample the input at c + shift.
            let pos = c as f64 + shift;
            let i0 = pos.floor();
            let frac = (pos - i0) as f32;
            let get = |i: f64| -> f32 {
                if i >= 0.0 && (i as usize) < n {
                    // in-range: i was bounds-checked against 0..n just above
                    sino.get(p, i as u32)
                } else {
                    0.0
                }
            };
            // in-range: c < num_channels fits u32
            out[scan.ray_index(p, c as u32) as usize] =
                get(i0) * (1.0 - frac) + get(i0 + 1.0) * frac;
        }
    }
    Sinogram::new(scan, out)
}

/// Estimate and correct the centre of rotation in one call; returns the
/// corrected sinogram and the estimated shift (in the same sense as
/// [`shift_sinogram`]'s argument: the correction applies the negation).
pub fn correct_center(sino: &Sinogram) -> (Sinogram, f64) {
    let shift = estimate_center_shift(sino);
    (shift_sinogram(sino, -shift), shift)
}

/// Remove ring artifacts: per-channel gain errors add a constant to every
/// measurement of a channel (a vertical stripe in the sinogram, a ring in
/// the image).
///
/// Sorting-based detection (after Vo et al.'s sorted-domain idea) with a
/// stationarity verification: candidate channels are outliers of the
/// sorted-domain cross-channel deviation, and are corrected only when
/// their offset from interpolated neighbours is *stable across angles*
/// (the defining property of a gain error).
///
/// Limitation (shared by all blind ring-removal estimators): the tangent
/// edge of a perfectly *circular* sample sits at the same channel for
/// every angle and is mathematically indistinguishable from a stripe —
/// expect edge artifacts on such data, and prefer flat-field
/// normalization ([`crate::Sinogram::from_transmission`]) when flats are
/// available. Apply to centred sinograms (before any centre-of-rotation
/// resampling the stripes would smear across channels).
pub fn remove_rings(sino: &Sinogram, window: usize) -> Sinogram {
    let scan = sino.scan();
    let n = scan.num_channels() as usize;
    let m = scan.num_projections() as usize;
    assert!(window >= 1);

    // Per channel: (value, original angle), sorted by value.
    let sorted: Vec<Vec<(f32, u32)>> = (0..n)
        .map(|c| {
            let mut col: Vec<(f32, u32)> = (0..m)
                // in-range: projection/channel indices are bounded by the u32 sinogram dims
                .map(|p| (sino.get(p as u32, c as u32), p as u32))
                .collect();
            col.sort_by(|a, b| f32::total_cmp(&a.0, &b.0));
            col
        })
        .collect();

    // In the sorted (rank) domain, a gain-shifted channel deviates from
    // the median of its cross-channel neighbourhood at *every* rank, while
    // genuine structure deviates only at a few ranks. The per-channel
    // deviation summary (median over ranks) therefore separates stripes
    // from structure; channels whose summary is a robust outlier get their
    // scalar bias subtracted, all others are left bit-identical.
    let median_of = |w: &mut Vec<f32>| -> f32 {
        w.sort_by(f32::total_cmp);
        let k = w.len();
        if k % 2 == 1 {
            w[k / 2]
        } else {
            0.5 * (w[k / 2 - 1] + w[k / 2])
        }
    };

    let mut win: Vec<f32> = Vec::with_capacity(2 * window);
    let mut deviation = vec![0f32; n];
    let mut devs: Vec<f32> = Vec::with_capacity(m);
    for (c, d) in deviation.iter_mut().enumerate() {
        let lo = c.saturating_sub(window);
        let hi = (c + window).min(n - 1);
        devs.clear();
        for (rank, entry) in sorted[c].iter().enumerate() {
            win.clear();
            win.extend((lo..=hi).filter(|&cc| cc != c).map(|cc| sorted[cc][rank].0));
            devs.push(entry.0 - median_of(&mut win));
        }
        *d = median_of(&mut devs);
    }
    // Candidate stripes: robust outliers of the deviation summaries.
    let mut abs: Vec<f32> = deviation.iter().map(|v| v.abs()).collect();
    let threshold = 3.0 * median_of(&mut abs).max(1e-6);
    let flagged: Vec<bool> = deviation.iter().map(|d| d.abs() > threshold).collect();

    // Refine and verify each candidate: compute the per-angle deviation
    // from linear interpolation of the nearest *unflagged* neighbours. A
    // genuine gain stripe is a *stationary* offset — the deviations
    // cluster tightly around their median at every angle — while a
    // structural feature (object tangent, truncation edge) varies with
    // angle. Candidates whose deviations are not stable are rejected.
    let mut out = sino.data().to_vec();
    for c in 0..n {
        if !flagged[c] {
            continue;
        }
        let left = (0..c).rev().find(|&cc| !flagged[cc]);
        let right = (c + 1..n).find(|&cc| !flagged[cc]);
        let mut diffs: Vec<f32> = (0..m)
            .map(|p| {
                // in-range: projection/channel indices are bounded by the u32 sinogram dims
                let v = sino.get(p as u32, c as u32);
                let interp = match (left, right) {
                    (Some(l), Some(r)) => {
                        let t = (c - l) as f32 / (r - l) as f32;
                        // in-range: l is a channel index, bounded by the u32 sinogram dims
                        let vl = sino.get(p as u32, l as u32);
                        // in-range: r is a channel index, bounded by the u32 sinogram dims
                        let vr = sino.get(p as u32, r as u32);
                        vl + t * (vr - vl)
                    }
                    // in-range: l is a channel index, bounded by the u32 sinogram dims
                    (Some(l), None) => sino.get(p as u32, l as u32),
                    // in-range: r is a channel index, bounded by the u32 sinogram dims
                    (None, Some(r)) => sino.get(p as u32, r as u32),
                    (None, None) => v,
                };
                v - interp
            })
            .collect();
        let bias = median_of(&mut diffs);
        // Stationarity check: interquartile spread must be smaller than
        // the offset itself.
        let q25 = diffs[diffs.len() / 4];
        let q75 = diffs[(3 * diffs.len()) / 4];
        if (q75 - q25) > bias.abs() {
            continue; // angle-dependent => structure, not a stripe
        }
        for p in 0..m {
            out[p * n + c] -= bias;
        }
    }
    Sinogram::new(scan, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::phantom::shepp_logan;
    use crate::scan::ScanGeometry;
    use crate::sino::{simulate_sinogram, NoiseModel};

    fn clean_sino(n: u32, m: u32) -> Sinogram {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = shepp_logan().rasterize(n);
        simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0)
    }

    #[test]
    fn centered_sinogram_estimates_near_zero_shift() {
        let sino = clean_sino(64, 97);
        let shift = estimate_center_shift(&sino);
        assert!(shift.abs() < 0.6, "shift {shift}");
    }

    #[test]
    fn injected_shift_is_recovered() {
        let sino = clean_sino(64, 97);
        for inject in [2.0f64, -3.0, 5.5] {
            let displaced = shift_sinogram(&sino, inject);
            let est = estimate_center_shift(&displaced);
            assert!(
                (est - inject).abs() < 0.75,
                "injected {inject}, estimated {est}"
            );
        }
    }

    #[test]
    fn correct_center_roundtrips() {
        let sino = clean_sino(64, 97);
        let displaced = shift_sinogram(&sino, 4.0);
        let (fixed, est) = correct_center(&displaced);
        assert!((est - 4.0).abs() < 0.75, "estimate {est}");
        // The corrected sinogram is closer to the original than the
        // displaced one (compare the central region, away from edges).
        let diff = |a: &Sinogram, b: &Sinogram| -> f64 {
            let n = a.scan().num_channels();
            (0..a.scan().num_projections())
                .flat_map(|p| (n / 4..3 * n / 4).map(move |c| (p, c)))
                .map(|(p, c)| ((a.get(p, c) - b.get(p, c)) as f64).powi(2))
                .sum()
        };
        assert!(diff(&fixed, &sino) < 0.05 * diff(&displaced, &sino));
    }

    #[test]
    fn ring_bias_is_removed() {
        // Realistic channel count: the cross-channel median window must be
        // small relative to the structural scale (on a 64-channel toy
        // sinogram ±2 channels is a huge fraction of the object; on real
        // detectors it is negligible).
        let sino = clean_sino(256, 180);
        let scan = sino.scan();
        let n = scan.num_channels() as usize;
        let mut corrupted = sino.data().to_vec();
        // Stripe amplitudes above the phantom's intrinsic per-channel
        // roughness (~1.2 in line-integral units here): blind ring removal
        // can only target stripes that actually stand out — weaker gain
        // errors are handled upstream by flat-field normalization
        // (`Sinogram::from_transmission`).
        let bias: Vec<f32> = (0..n)
            .map(|c| match c {
                40 | 130 => 6.0,
                77 | 200 => -4.5,
                _ => 0.0,
            })
            .collect();
        for p in 0..scan.num_projections() as usize {
            for c in 0..n {
                corrupted[p * n + c] += bias[c];
            }
        }
        let corrupted = Sinogram::new(scan, corrupted);
        let cleaned = remove_rings(&corrupted, 2);
        let err = |a: &Sinogram| -> f64 {
            a.data()
                .iter()
                .zip(sino.data())
                .map(|(&x, &y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            err(&cleaned) < 0.35 * err(&corrupted),
            "cleaned {} vs corrupted {}",
            err(&cleaned),
            err(&corrupted)
        );
    }

    #[test]
    fn ring_removal_preserves_clean_data() {
        let sino = clean_sino(256, 96);
        let cleaned = remove_rings(&sino, 2);
        let rms: f64 = (cleaned
            .data()
            .iter()
            .zip(sino.data())
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / sino.data().len() as f64)
            .sqrt();
        // Values run to ~300 pixel-units; smoothing residue stays tiny.
        assert!(rms < 0.5, "rms change {rms}");
    }

    #[test]
    fn shift_by_zero_is_identity() {
        let sino = clean_sino(32, 16);
        let shifted = shift_sinogram(&sino, 0.0);
        assert_eq!(shifted.data(), sino.data());
    }
}

//! Minimal image/data I/O: binary PGM for viewing reconstructions, raw
//! little-endian f32 for exchanging sinograms and volumes.
//!
//! The real MemXCT reads APS HDF5 sinograms; this reproduction keeps I/O
//! dependency-free so the CLI can still write inspectable artifacts.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write a row-major f32 image as an 8-bit binary PGM, linearly mapping
/// `[min, max]` (computed from the data) to `[0, 255]`.
pub fn write_pgm(path: &Path, width: usize, height: usize, data: &[f32]) -> std::io::Result<()> {
    assert_eq!(data.len(), width * height, "image shape");
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in data {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = if hi > lo { hi - lo } else { 1.0 };
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{width} {height}\n255\n")?;
    let bytes: Vec<u8> = data
        .iter()
        .map(|&v| (((v - lo) / range) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect();
    w.write_all(&bytes)?;
    w.flush()
}

/// Write a flat f32 buffer as raw little-endian bytes.
pub fn write_raw_f32(path: &Path, data: &[f32]) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for &v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read a raw little-endian f32 buffer.
pub fn read_raw_f32(path: &Path) -> std::io::Result<Vec<f32>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 4 != 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "raw f32 file length is not a multiple of 4",
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xct_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn raw_roundtrip() {
        let path = tmp("roundtrip.raw");
        let data: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        write_raw_f32(&path, &data).unwrap();
        let back = read_raw_f32(&path).unwrap();
        assert_eq!(back, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pgm_has_correct_header_and_size() {
        let path = tmp("img.pgm");
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        write_pgm(&path, 4, 3, &data).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = b"P5\n4 3\n255\n";
        assert!(bytes.starts_with(header));
        assert_eq!(bytes.len(), header.len() + 12);
        // Linear mapping: min -> 0, max -> 255.
        assert_eq!(bytes[header.len()], 0);
        assert_eq!(*bytes.last().unwrap(), 255);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn constant_image_does_not_divide_by_zero() {
        let path = tmp("flat.pgm");
        write_pgm(&path, 2, 2, &[5.0; 4]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[bytes.len() - 4..], &[0, 0, 0, 0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_raw_is_an_error() {
        let path = tmp("bad.raw");
        std::fs::write(&path, [1u8, 2, 3]).unwrap();
        assert!(read_raw_f32(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

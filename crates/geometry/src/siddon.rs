//! Exact radiological path computation (Siddon's algorithm, here in its
//! incremental Amanatides–Woo form, which produces the identical set of
//! pixel/length pairs without building the parametric merge lists).
//!
//! This is the kernel that compute-centric codes (Listing 1 of the paper)
//! execute for every ray in every iteration, and that MemXCT executes once
//! during preprocessing to build the sparse projection matrix.

use crate::grid::Grid;
use crate::scan::Ray;

/// One pixel intersected by a ray, with the intersection (chord) length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaySample {
    /// Row-major pixel index.
    pub pixel: u32,
    /// Length of the ray segment inside the pixel.
    pub length: f32,
}

const EPS: f64 = 1e-12;

/// Trace `ray` through `grid`, invoking `emit(pixel_index, length)` for
/// every intersected pixel in traversal order. Lengths are exact chord
/// lengths; their sum equals the length of the ray's intersection with the
/// grid square.
pub fn trace_ray<F: FnMut(u32, f32)>(grid: &Grid, ray: &Ray, mut emit: F) {
    let n = grid.n() as i64;
    let lo = grid.min_coord();
    let hi = grid.max_coord();

    let (ox, oy) = ray.origin;
    let (dx, dy) = ray.dir;

    // Slab intersection of the ray with the grid bounding box.
    let mut t_enter = f64::NEG_INFINITY;
    let mut t_exit = f64::INFINITY;
    for (o, d) in [(ox, dx), (oy, dy)] {
        if d.abs() < EPS {
            if o < lo || o > hi {
                return; // Parallel to this slab and outside it.
            }
        } else {
            let t1 = (lo - o) / d;
            let t2 = (hi - o) / d;
            let (t1, t2) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            t_enter = t_enter.max(t1);
            t_exit = t_exit.min(t2);
        }
    }
    if t_enter >= t_exit - EPS {
        return; // Misses the grid (or grazes a corner).
    }

    // Entry point, nudged inside to get a well-defined starting cell.
    let mut t = t_enter;
    let px = ox + t * dx;
    let py = oy + t * dy;
    let mut ix = ((px - lo).floor() as i64).clamp(0, n - 1);
    let mut iy = ((py - lo).floor() as i64).clamp(0, n - 1);

    // Rays that run exactly along a grid line (axis-aligned with integer
    // offset) are assigned to the cell on the positive side, which the
    // clamp+floor above already selects consistently.

    let step_x: i64 = if dx > 0.0 { 1 } else { -1 };
    let step_y: i64 = if dy > 0.0 { 1 } else { -1 };

    // Parameter value at which the ray crosses the next x/y gridline.
    let mut t_max_x = if dx.abs() < EPS {
        f64::INFINITY
    } else {
        let next = lo + (ix + i64::from(dx > 0.0)) as f64;
        (next - ox) / dx
    };
    let mut t_max_y = if dy.abs() < EPS {
        f64::INFINITY
    } else {
        let next = lo + (iy + i64::from(dy > 0.0)) as f64;
        (next - oy) / dy
    };
    let t_delta_x = if dx.abs() < EPS {
        f64::INFINITY
    } else {
        1.0 / dx.abs()
    };
    let t_delta_y = if dy.abs() < EPS {
        f64::INFINITY
    } else {
        1.0 / dy.abs()
    };

    while t < t_exit - EPS {
        let t_next = t_max_x.min(t_max_y).min(t_exit);
        let len = t_next - t;
        if len > EPS {
            debug_assert!(ix >= 0 && ix < n && iy >= 0 && iy < n);
            // in-range: debug-asserted within 0..n just above
            emit(grid.pixel_index(ix as u32, iy as u32), len as f32);
        }
        if t_next >= t_exit - EPS {
            break;
        }
        // Advance to the neighbouring cell across the closest gridline.
        if t_max_x <= t_max_y {
            ix += step_x;
            t_max_x += t_delta_x;
            if ix < 0 || ix >= n {
                break;
            }
        } else {
            iy += step_y;
            t_max_y += t_delta_y;
            if iy < 0 || iy >= n {
                break;
            }
        }
        t = t_next;
    }
}

/// Like [`trace_ray`], collecting the samples into a vector.
///
/// ```
/// use xct_geometry::{trace_ray_collect, Grid, Ray};
/// let grid = Grid::new(8);
/// let vertical = Ray { origin: (0.5, 0.0), dir: (0.0, 1.0) };
/// let samples = tracing_example(&grid, &vertical);
/// // A vertical ray crosses all 8 rows of one column, one unit each:
/// assert_eq!(samples.len(), 8);
/// let total: f32 = samples.iter().map(|s| s.length).sum();
/// assert!((total - 8.0).abs() < 1e-5);
/// # use xct_geometry::RaySample;
/// # fn tracing_example(g: &Grid, r: &Ray) -> Vec<RaySample> { trace_ray_collect(g, r) }
/// ```
pub fn trace_ray_collect(grid: &Grid, ray: &Ray) -> Vec<RaySample> {
    let mut out = Vec::new();
    trace_ray(grid, ray, |pixel, length| {
        out.push(RaySample { pixel, length })
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanGeometry;

    fn total_length(samples: &[RaySample]) -> f64 {
        samples.iter().map(|s| s.length as f64).sum()
    }

    #[test]
    fn vertical_ray_crosses_full_column() {
        let g = Grid::new(8);
        // Channel offsets for N=8 are half-integers: ray through column 4.
        let ray = Ray {
            origin: (0.5, 0.0),
            dir: (0.0, 1.0),
        };
        let s = trace_ray_collect(&g, &ray);
        assert_eq!(s.len(), 8);
        assert!((total_length(&s) - 8.0).abs() < 1e-6);
        for (j, smp) in s.iter().enumerate() {
            assert_eq!(smp.pixel, g.pixel_index(4, j as u32));
            assert!((smp.length - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn horizontal_ray_crosses_full_row() {
        let g = Grid::new(4);
        let ray = Ray {
            origin: (0.0, -1.5),
            dir: (1.0, 0.0),
        };
        let s = trace_ray_collect(&g, &ray);
        assert_eq!(s.len(), 4);
        assert!((total_length(&s) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn diagonal_ray_length_is_grid_diagonal() {
        let g = Grid::new(16);
        let inv = 1.0 / 2f64.sqrt();
        let ray = Ray {
            origin: (0.0, 0.0),
            dir: (inv, inv),
        };
        let s = trace_ray_collect(&g, &ray);
        assert!((total_length(&s) - 16.0 * 2f64.sqrt()).abs() < 1e-6);
        // A diagonal through cell corners crosses exactly n cells.
        assert_eq!(s.len(), 16);
        for smp in &s {
            assert!((smp.length as f64 - 2f64.sqrt()).abs() < 1e-5);
        }
    }

    #[test]
    fn missing_ray_emits_nothing() {
        let g = Grid::new(8);
        let ray = Ray {
            origin: (100.0, 0.0),
            dir: (0.0, 1.0),
        };
        assert!(trace_ray_collect(&g, &ray).is_empty());
    }

    #[test]
    fn chord_length_matches_geometry_for_all_scan_rays() {
        // For every ray of a scan, the traced length must equal the exact
        // chord of the ray with the grid square.
        let g = Grid::new(32);
        let scan = ScanGeometry::new(24, 32);
        for p in 0..scan.num_projections() {
            for c in 0..scan.num_channels() {
                let ray = scan.ray(p, c);
                let s = trace_ray_collect(&g, &ray);
                let chord = exact_chord(&g, &ray);
                assert!(
                    (total_length(&s) - chord).abs() < 1e-5,
                    "p={p} c={c}: traced {} vs chord {}",
                    total_length(&s),
                    chord
                );
            }
        }
    }

    /// Chord of a ray with the grid bounding square by the slab method.
    fn exact_chord(g: &Grid, ray: &Ray) -> f64 {
        let (lo, hi) = (g.min_coord(), g.max_coord());
        let mut t0 = f64::NEG_INFINITY;
        let mut t1 = f64::INFINITY;
        for (o, d) in [(ray.origin.0, ray.dir.0), (ray.origin.1, ray.dir.1)] {
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return 0.0;
                }
            } else {
                let a = (lo - o) / d;
                let b = (hi - o) / d;
                t0 = t0.max(a.min(b));
                t1 = t1.min(a.max(b));
            }
        }
        (t1 - t0).max(0.0)
    }

    #[test]
    fn no_duplicate_pixels_along_ray() {
        let g = Grid::new(64);
        let scan = ScanGeometry::new(50, 64);
        for p in (0..50).step_by(7) {
            for c in (0..64).step_by(5) {
                let s = trace_ray_collect(&g, &scan.ray(p, c));
                let mut seen = std::collections::HashSet::new();
                for smp in &s {
                    assert!(seen.insert(smp.pixel), "duplicate pixel {}", smp.pixel);
                }
            }
        }
    }

    #[test]
    fn samples_are_spatially_contiguous() {
        let g = Grid::new(32);
        let scan = ScanGeometry::new(17, 32);
        for p in 0..17 {
            let s = trace_ray_collect(&g, &scan.ray(p, 10));
            for w in s.windows(2) {
                let (ax, ay) = g.pixel_coords(w[0].pixel);
                let (bx, by) = g.pixel_coords(w[1].pixel);
                assert_eq!(ax.abs_diff(bx) + ay.abs_diff(by), 1);
            }
        }
    }

    #[test]
    fn gridline_ray_is_assigned_consistently() {
        // N odd => integer channel offsets: the θ=0 ray lies exactly on a
        // pixel boundary. It must still deposit n cells of unit length.
        let g = Grid::new(5);
        let scan = ScanGeometry::new(2, 5);
        let s = trace_ray_collect(&g, &scan.ray(0, 2)); // offset 0: x == 0 line
        assert_eq!(s.len(), 5);
        assert!((total_length(&s) - 5.0).abs() < 1e-6);
    }
}

//! Parallel-beam scan geometry: which rays are measured.

/// An infinite ray in the tomogram plane: `p(t) = origin + t * dir`,
/// with `dir` a unit vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// A point on the ray.
    pub origin: (f64, f64),
    /// Unit direction.
    pub dir: (f64, f64),
}

/// Parallel-beam raster scan geometry (the paper's datasets all use it).
///
/// A scan takes `num_projections` equally-spaced angles `θ ∈ [0, π)`.
/// At each angle, `num_channels` detector channels with unit pitch measure
/// rays perpendicular to the detector axis. Sinogram rows are indexed by
/// projection (`M` rows), columns by channel (`N` columns), matching the
/// paper's `M × N` sinogram dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanGeometry {
    num_projections: u32,
    num_channels: u32,
}

impl ScanGeometry {
    /// Create a scan with `num_projections` angles and `num_channels`
    /// detector channels.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(num_projections: u32, num_channels: u32) -> Self {
        assert!(num_projections > 0 && num_channels > 0);
        ScanGeometry {
            num_projections,
            num_channels,
        }
    }

    /// Number of projection angles (`M`).
    #[inline]
    pub fn num_projections(&self) -> u32 {
        self.num_projections
    }

    /// Number of detector channels (`N`).
    #[inline]
    pub fn num_channels(&self) -> u32 {
        self.num_channels
    }

    /// Total number of measured rays (`M × N` sinogram entries).
    #[inline]
    pub fn num_rays(&self) -> usize {
        (self.num_projections as usize) * (self.num_channels as usize)
    }

    /// Rotation angle of projection `p`, in radians, equally spaced on
    /// `[0, π)`.
    #[inline]
    pub fn angle(&self, p: u32) -> f64 {
        debug_assert!(p < self.num_projections);
        std::f64::consts::PI * (p as f64) / (self.num_projections as f64)
    }

    /// Signed detector offset of channel `c` from the rotation axis.
    #[inline]
    pub fn channel_offset(&self, c: u32) -> f64 {
        debug_assert!(c < self.num_channels);
        c as f64 - (self.num_channels as f64 - 1.0) / 2.0
    }

    /// The measured ray for `(projection, channel)`.
    ///
    /// The detector axis at angle θ is `u = (cos θ, sin θ)`; rays travel
    /// along `v = (-sin θ, cos θ)` and pass through `s · u` where `s` is the
    /// channel offset.
    pub fn ray(&self, projection: u32, channel: u32) -> Ray {
        let theta = self.angle(projection);
        let (sin_t, cos_t) = theta.sin_cos();
        let s = self.channel_offset(channel);
        Ray {
            origin: (s * cos_t, s * sin_t),
            dir: (-sin_t, cos_t),
        }
    }

    /// Flat sinogram row index of `(projection, channel)`.
    #[inline]
    pub fn ray_index(&self, projection: u32, channel: u32) -> u32 {
        projection * self.num_channels + channel
    }

    /// Inverse of [`ScanGeometry::ray_index`].
    #[inline]
    pub fn ray_coords(&self, index: u32) -> (u32, u32) {
        (index / self.num_channels, index % self.num_channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angles_cover_half_circle() {
        let g = ScanGeometry::new(4, 8);
        assert_eq!(g.angle(0), 0.0);
        assert!((g.angle(2) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(g.angle(3) < std::f64::consts::PI);
    }

    #[test]
    fn channel_offsets_are_centred() {
        let g = ScanGeometry::new(1, 5);
        assert_eq!(g.channel_offset(0), -2.0);
        assert_eq!(g.channel_offset(2), 0.0);
        assert_eq!(g.channel_offset(4), 2.0);
        let even = ScanGeometry::new(1, 4);
        assert_eq!(even.channel_offset(0), -1.5);
        assert_eq!(even.channel_offset(3), 1.5);
    }

    #[test]
    fn ray_at_angle_zero_is_vertical() {
        let g = ScanGeometry::new(2, 3);
        let r = g.ray(0, 2);
        assert!((r.dir.0 - 0.0).abs() < 1e-12);
        assert!((r.dir.1 - 1.0).abs() < 1e-12);
        assert!((r.origin.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ray_dir_is_unit_and_perpendicular_to_detector() {
        let g = ScanGeometry::new(7, 9);
        for p in 0..7 {
            for c in 0..9 {
                let r = g.ray(p, c);
                let norm = (r.dir.0 * r.dir.0 + r.dir.1 * r.dir.1).sqrt();
                assert!((norm - 1.0).abs() < 1e-12);
                // origin · dir == 0 for rays through the detector axis.
                let dot = r.origin.0 * r.dir.0 + r.origin.1 * r.dir.1;
                assert!(dot.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ray_index_roundtrip() {
        let g = ScanGeometry::new(6, 11);
        for p in 0..6 {
            for c in 0..11 {
                assert_eq!(g.ray_coords(g.ray_index(p, c)), (p, c));
            }
        }
    }
}

//! The six evaluation datasets of the paper (Table 3) and their memory
//! footprints.

use crate::grid::Grid;
use crate::phantom::{brain_like, shale_like, shepp_logan, Phantom};
use crate::scan::{Ray, ScanGeometry};

/// What kind of sample a dataset images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Artificial sample (the paper's ADS datasets).
    Artificial,
    /// Shale rock (RDS1; open-source tomobank data in the paper, a
    /// procedural shale-like phantom here).
    ShaleRock,
    /// Mouse brain (RDS2; proprietary in the paper, a procedural
    /// brain-like phantom here).
    MouseBrain,
}

/// A dataset: sinogram dimensions plus the sample being imaged.
///
/// `M = projections` sinogram rows, `N = channels` columns; the tomogram is
/// `N × N` (paper §2.1). The constants below reproduce Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dataset {
    /// Dataset name as used in the paper ("ADS1", "RDS2", ...).
    pub name: &'static str,
    /// Number of projection angles (sinogram rows, `M`).
    pub projections: u32,
    /// Number of detector channels (sinogram columns, `N`).
    pub channels: u32,
    /// Sample type.
    pub sample: SampleKind,
}

/// ADS1: 360×256 artificial dataset.
pub const ADS1: Dataset = Dataset {
    name: "ADS1",
    projections: 360,
    channels: 256,
    sample: SampleKind::Artificial,
};
/// ADS2: 750×512 artificial dataset.
pub const ADS2: Dataset = Dataset {
    name: "ADS2",
    projections: 750,
    channels: 512,
    sample: SampleKind::Artificial,
};
/// ADS3: 1500×1024 artificial dataset.
pub const ADS3: Dataset = Dataset {
    name: "ADS3",
    projections: 1500,
    channels: 1024,
    sample: SampleKind::Artificial,
};
/// ADS4: 2400×2048 artificial dataset.
pub const ADS4: Dataset = Dataset {
    name: "ADS4",
    projections: 2400,
    channels: 2048,
    sample: SampleKind::Artificial,
};
/// RDS1: 1501×2048 shale-rock dataset.
pub const RDS1: Dataset = Dataset {
    name: "RDS1",
    projections: 1501,
    channels: 2048,
    sample: SampleKind::ShaleRock,
};
/// RDS2: 4501×11283 mouse-brain dataset (the paper's headline run).
pub const RDS2: Dataset = Dataset {
    name: "RDS2",
    projections: 4501,
    channels: 11283,
    sample: SampleKind::MouseBrain,
};

/// All six datasets in Table 3 order.
pub const ALL_DATASETS: [Dataset; 6] = [ADS1, ADS2, ADS3, ADS4, RDS1, RDS2];

impl Dataset {
    /// The scan geometry of this dataset.
    pub fn scan(&self) -> ScanGeometry {
        ScanGeometry::new(self.projections, self.channels)
    }

    /// The reconstruction grid (`N × N`).
    pub fn grid(&self) -> Grid {
        Grid::new(self.channels)
    }

    /// A scaled-down copy (both dimensions divided by `divisor`, minimum 8
    /// channels / 4 projections) for laptop-scale runs. Keeps the M/N ratio
    /// so the matrix structure stays representative.
    pub fn scaled(&self, divisor: u32) -> Dataset {
        assert!(divisor > 0);
        Dataset {
            name: self.name,
            projections: (self.projections / divisor).max(4),
            channels: (self.channels / divisor).max(8),
            sample: self.sample,
        }
    }

    /// A copy with only the projection count divided (minimum 4). Keeps
    /// the tomogram at full width, so cache-locality experiments see the
    /// real irregular footprint while the matrix stays laptop-sized
    /// (nnz scales with M, the footprint with N²).
    pub fn scaled_projections(&self, divisor: u32) -> Dataset {
        assert!(divisor > 0);
        Dataset {
            name: self.name,
            projections: (self.projections / divisor).max(4),
            channels: self.channels,
            sample: self.sample,
        }
    }

    /// The procedural phantom standing in for this dataset's sample.
    pub fn phantom(&self) -> Phantom {
        match self.sample {
            SampleKind::Artificial => shepp_logan(),
            SampleKind::ShaleRock => shale_like(0x5ca1e),
            SampleKind::MouseBrain => brain_like(0xb5a1),
        }
    }

    /// Exact memory footprint of the memoized data structures (Table 3),
    /// computed from the real ray geometry in O(M·N) without tracing.
    pub fn footprint(&self) -> DatasetFootprint {
        let grid = self.grid();
        let scan = self.scan();
        let mut nnz: u64 = 0;
        for p in 0..scan.num_projections() {
            for c in 0..scan.num_channels() {
                nnz += count_cells(&grid, &scan.ray(p, c));
            }
        }
        let sino = scan.num_rays() as u64 * 4;
        let tomo = grid.num_pixels() as u64 * 4;
        DatasetFootprint {
            nnz,
            // Forward projection gathers from the tomogram; backprojection
            // gathers from the sinogram (paper §3.1.1: "irregular data").
            irregular_forward: tomo,
            irregular_backward: sino,
            // Each stored nonzero needs a u32 index and an f32 value, for
            // each of the forward and (transposed) backward matrices.
            regular_forward: nnz * 8,
            regular_backward: nnz * 8,
        }
    }
}

/// Memory footprint breakdown of a dataset (bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetFootprint {
    /// Number of nonzeroes in the projection matrix.
    pub nnz: u64,
    /// Irregularly-accessed bytes during forward projection (tomogram).
    pub irregular_forward: u64,
    /// Irregularly-accessed bytes during backprojection (sinogram).
    pub irregular_backward: u64,
    /// Regularly-accessed bytes during forward projection (CSR ind+val).
    pub regular_forward: u64,
    /// Regularly-accessed bytes during backprojection.
    pub regular_backward: u64,
}

/// Number of grid cells a ray crosses, in O(1): 1 + (x gridlines crossed)
/// + (y gridlines crossed) within the clipped segment.
///
/// When a ray passes exactly through a grid corner this counts one cell
/// more than the tracer emits (the tracer skips the zero-length corner
/// cell), so the result is an upper bound that is exact for all
/// non-degenerate rays — more than accurate enough for the Table 3 memory
/// footprints.
fn count_cells(grid: &Grid, ray: &Ray) -> u64 {
    const EPS: f64 = 1e-12;
    let lo = grid.min_coord();
    let hi = grid.max_coord();
    let (ox, oy) = ray.origin;
    let (dx, dy) = ray.dir;

    let mut t0 = f64::NEG_INFINITY;
    let mut t1 = f64::INFINITY;
    for (o, d) in [(ox, dx), (oy, dy)] {
        if d.abs() < EPS {
            if o < lo || o > hi {
                return 0;
            }
        } else {
            let a = (lo - o) / d;
            let b = (hi - o) / d;
            t0 = t0.max(a.min(b));
            t1 = t1.min(a.max(b));
        }
    }
    if t0 >= t1 - EPS {
        return 0;
    }
    // Nudge off the boundary so floor() lands in the interior cells.
    let tm0 = t0 + EPS * 4.0;
    let tm1 = t1 - EPS * 4.0;
    let cells_axis = |o: f64, d: f64| -> u64 {
        if d.abs() < EPS {
            return 0;
        }
        let a = o + tm0 * d - lo;
        let b = o + tm1 * d - lo;
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let n1 = (a.floor() as i64).clamp(0, grid.n() as i64 - 1);
        let n2 = (b.floor() as i64).clamp(0, grid.n() as i64 - 1);
        (n2 - n1) as u64
    };
    1 + cells_axis(ox, dx) + cells_axis(oy, dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::siddon::trace_ray_collect;

    #[test]
    fn table3_dimensions() {
        assert_eq!(ADS1.projections, 360);
        assert_eq!(ADS1.channels, 256);
        assert_eq!(RDS2.projections, 4501);
        assert_eq!(RDS2.channels, 11283);
        assert_eq!(ALL_DATASETS.len(), 6);
    }

    #[test]
    fn count_cells_matches_trace() {
        // Exact except for rays through grid corners, where the count is an
        // upper bound by the number of corner hits (a handful per ray at
        // special angles like 30°/45°).
        let grid = Grid::new(32);
        let scan = ScanGeometry::new(30, 32);
        let mut total_traced = 0u64;
        let mut total_counted = 0u64;
        for p in 0..30 {
            for c in 0..32 {
                let ray = scan.ray(p, c);
                let traced = trace_ray_collect(&grid, &ray).len() as u64;
                let counted = count_cells(&grid, &ray);
                assert!(counted >= traced, "p={p} c={c}: {counted} < {traced}");
                assert!(
                    counted - traced <= 32,
                    "p={p} c={c}: slack {}",
                    counted - traced
                );
                total_traced += traced;
                total_counted += counted;
            }
        }
        // Aggregate error well under 1 %.
        let rel = (total_counted - total_traced) as f64 / total_traced as f64;
        assert!(rel < 0.01, "aggregate overcount {rel}");
    }

    #[test]
    fn ads1_footprint_matches_paper_scale() {
        // Table 3 reports 215/215 MB regular and 256/360 KB irregular.
        let f = ADS1.footprint();
        assert_eq!(f.irregular_forward, 256 * 1024);
        assert_eq!(f.irregular_backward, 360 * 256 * 4);
        let mb = f.regular_forward as f64 / (1024.0 * 1024.0);
        assert!(
            (180.0..260.0).contains(&mb),
            "ADS1 regular data {mb:.1} MiB, expected ≈215"
        );
    }

    #[test]
    fn scaled_preserves_ratio_roughly() {
        let d = RDS1.scaled(8);
        assert_eq!(d.channels, 256);
        assert_eq!(d.projections, 187);
    }

    #[test]
    fn footprint_grows_cubically() {
        // nnz is O(M·N²): doubling channels and projections gives ~8x.
        let small = ADS1.scaled(2).footprint();
        let full = ADS1.footprint();
        let ratio = full.nnz as f64 / small.nnz as f64;
        assert!((6.0..10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn phantoms_match_samples() {
        assert_eq!(ADS2.phantom().name(), "shepp-logan");
        assert_eq!(RDS1.phantom().name(), "shale-like");
        assert_eq!(RDS2.phantom().name(), "brain-like");
    }
}

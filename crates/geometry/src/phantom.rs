//! Procedural phantoms: synthetic samples to image.
//!
//! The paper's artificial datasets (ADS1–ADS4) use synthetic objects; its
//! real datasets are a shale rock (RDS1, open source) and a mouse brain
//! (RDS2, proprietary). We generate procedural equivalents — a classic
//! Shepp–Logan head phantom, a grain-packed "shale", and a vessel-rich
//! "brain" — so every experiment has a deterministic, redistributable
//! input with comparable structure.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An ellipse with constant additive attenuation, in normalized
/// coordinates: the phantom support is the unit disk in `[-1, 1]²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipse {
    /// Centre.
    pub cx: f64,
    /// Centre.
    pub cy: f64,
    /// Semi-axis along the (rotated) x direction.
    pub a: f64,
    /// Semi-axis along the (rotated) y direction.
    pub b: f64,
    /// Rotation angle in radians.
    pub theta: f64,
    /// Additive attenuation inside the ellipse.
    pub value: f32,
}

impl Ellipse {
    /// True when normalized point `(x, y)` lies inside the ellipse.
    #[inline]
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let (s, c) = self.theta.sin_cos();
        let dx = x - self.cx;
        let dy = y - self.cy;
        let u = c * dx + s * dy;
        let v = -s * dx + c * dy;
        (u / self.a).powi(2) + (v / self.b).powi(2) <= 1.0
    }
}

/// A procedural sample: a sum of ellipses evaluated in normalized
/// coordinates `[-1, 1]²`.
#[derive(Debug, Clone)]
pub struct Phantom {
    name: &'static str,
    ellipses: Vec<Ellipse>,
}

impl Phantom {
    /// Build a phantom from explicit ellipses.
    pub fn from_ellipses(name: &'static str, ellipses: Vec<Ellipse>) -> Self {
        Phantom { name, ellipses }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The component ellipses.
    pub fn ellipses(&self) -> &[Ellipse] {
        &self.ellipses
    }

    /// Attenuation at normalized point `(x, y)`.
    pub fn value(&self, x: f64, y: f64) -> f32 {
        self.ellipses
            .iter()
            .filter(|e| e.contains(x, y))
            .map(|e| e.value)
            .sum()
    }

    /// Rasterize to an `n × n` row-major image (pixel centres sampled).
    pub fn rasterize(&self, n: u32) -> Vec<f32> {
        let mut img = vec![0.0f32; (n as usize) * (n as usize)];
        let scale = 2.0 / n as f64;
        for j in 0..n {
            let y = (j as f64 + 0.5) * scale - 1.0;
            for i in 0..n {
                let x = (i as f64 + 0.5) * scale - 1.0;
                img[(j * n + i) as usize] = self.value(x, y);
            }
        }
        img
    }
}

/// The standard Shepp–Logan head phantom (10 ellipses, unmodified values).
pub fn shepp_logan() -> Phantom {
    // (value, a, b, cx, cy, theta_degrees)
    const E: [(f32, f64, f64, f64, f64, f64); 10] = [
        (2.0, 0.69, 0.92, 0.0, 0.0, 0.0),
        (-0.98, 0.6624, 0.874, 0.0, -0.0184, 0.0),
        (-0.02, 0.11, 0.31, 0.22, 0.0, -18.0),
        (-0.02, 0.16, 0.41, -0.22, 0.0, 18.0),
        (0.01, 0.21, 0.25, 0.0, 0.35, 0.0),
        (0.01, 0.046, 0.046, 0.0, 0.1, 0.0),
        (0.01, 0.046, 0.046, 0.0, -0.1, 0.0),
        (0.01, 0.046, 0.023, -0.08, -0.605, 0.0),
        (0.01, 0.023, 0.023, 0.0, -0.606, 0.0),
        (0.01, 0.023, 0.046, 0.06, -0.605, 0.0),
    ];
    Phantom::from_ellipses(
        "shepp-logan",
        E.iter()
            .map(|&(v, a, b, cx, cy, deg)| Ellipse {
                cx,
                cy,
                a,
                b,
                theta: deg.to_radians(),
                value: v,
            })
            .collect(),
    )
}

/// A uniform disk of the given radius and value (useful for analytic
/// verification: its projection is `2·value·sqrt(r² − s²)`).
pub fn disk(radius: f64, value: f32) -> Phantom {
    Phantom::from_ellipses(
        "disk",
        vec![Ellipse {
            cx: 0.0,
            cy: 0.0,
            a: radius,
            b: radius,
            theta: 0.0,
            value,
        }],
    )
}

/// A shale-like sample: a rock matrix densely packed with random mineral
/// grains of varying attenuation (stands in for RDS1, tomobank shale).
pub fn shale_like(seed: u64) -> Phantom {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ellipses = vec![Ellipse {
        cx: 0.0,
        cy: 0.0,
        a: 0.95,
        b: 0.95,
        theta: 0.0,
        value: 1.0, // rock matrix
    }];
    // Dense packing of small grains with varying density.
    for _ in 0..400 {
        let r = rng.gen_range(0.01..0.06);
        let cx = rng.gen_range(-0.85..0.85);
        let cy = rng.gen_range(-0.85..0.85);
        if cx * cx + cy * cy > 0.85 * 0.85 {
            continue;
        }
        ellipses.push(Ellipse {
            cx,
            cy,
            a: r,
            b: r * rng.gen_range(0.5..1.0),
            theta: rng.gen_range(0.0..std::f64::consts::PI),
            value: rng.gen_range(-0.8..1.5),
        });
    }
    Phantom::from_ellipses("shale-like", ellipses)
}

/// A brain-like sample: soft-tissue background inside a skull ring, with a
/// network of fine high-contrast vessels (stands in for RDS2, mouse brain).
pub fn brain_like(seed: u64) -> Phantom {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ellipses = vec![
        Ellipse {
            // skull
            cx: 0.0,
            cy: 0.0,
            a: 0.92,
            b: 0.95,
            theta: 0.0,
            value: 2.0,
        },
        Ellipse {
            // soft tissue
            cx: 0.0,
            cy: 0.0,
            a: 0.86,
            b: 0.89,
            theta: 0.0,
            value: -1.2,
        },
        Ellipse {
            // ventricle
            cx: 0.0,
            cy: 0.1,
            a: 0.25,
            b: 0.12,
            theta: 0.0,
            value: -0.3,
        },
    ];
    // Vessel network: chains of small overlapping circles following random
    // walks, mimicking the arteries visible in Fig 1 of the paper.
    for _ in 0..40 {
        let mut x = rng.gen_range(-0.6..0.6);
        let mut y = rng.gen_range(-0.6..0.6);
        let mut dir = rng.gen_range(0.0..std::f64::consts::TAU);
        let value = rng.gen_range(0.6..1.2);
        let radius = rng.gen_range(0.005..0.02);
        for _ in 0..rng.gen_range(8..30) {
            if x * x + y * y > 0.7 * 0.7 {
                break;
            }
            ellipses.push(Ellipse {
                cx: x,
                cy: y,
                a: radius,
                b: radius,
                theta: 0.0,
                value,
            });
            dir += rng.gen_range(-0.5..0.5);
            let step = radius * 1.5;
            x += step * dir.cos();
            y += step * dir.sin();
        }
    }
    Phantom::from_ellipses("brain-like", ellipses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shepp_logan_has_known_values() {
        let p = shepp_logan();
        // Centre of the head: 2 - 0.98 + 0.01 + 0.01 (ellipse 5 covers
        // (0,0)? ellipse 5 spans y in [0.1, 0.6]; not the origin).
        let v = p.value(0.0, 0.0);
        assert!(v > 0.9 && v < 1.2, "centre value {v}");
        // Outside the skull: zero.
        assert_eq!(p.value(0.95, 0.0), 0.0);
        assert_eq!(p.value(-0.9, -0.9), 0.0);
    }

    #[test]
    fn rasterize_dimensions_and_range() {
        let img = shepp_logan().rasterize(64);
        assert_eq!(img.len(), 64 * 64);
        let max = img.iter().cloned().fold(f32::MIN, f32::max);
        let min = img.iter().cloned().fold(f32::MAX, f32::min);
        assert!(max <= 2.01);
        assert!(min >= -0.01, "min {min}");
    }

    #[test]
    fn disk_contains_centre_only_within_radius() {
        let p = disk(0.5, 3.0);
        assert_eq!(p.value(0.0, 0.0), 3.0);
        assert_eq!(p.value(0.49, 0.0), 3.0);
        assert_eq!(p.value(0.51, 0.0), 0.0);
    }

    #[test]
    fn procedural_phantoms_are_deterministic() {
        let a = shale_like(7).rasterize(32);
        let b = shale_like(7).rasterize(32);
        assert_eq!(a, b);
        let c = shale_like(8).rasterize(32);
        assert_ne!(a, c);
    }

    #[test]
    fn brain_has_fine_structure() {
        let img = brain_like(1).rasterize(128);
        // Count distinct value levels as a crude structure measure.
        let mut vals: Vec<i64> = img.iter().map(|v| (v * 1e4) as i64).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(
            vals.len() > 4,
            "expected vessels to add levels, got {}",
            vals.len()
        );
    }

    #[test]
    fn ellipse_rotation_works() {
        let e = Ellipse {
            cx: 0.0,
            cy: 0.0,
            a: 0.5,
            b: 0.1,
            theta: std::f64::consts::FRAC_PI_2,
            value: 1.0,
        };
        // After 90° rotation the long axis is along y.
        assert!(e.contains(0.0, 0.4));
        assert!(!e.contains(0.4, 0.0));
    }
}

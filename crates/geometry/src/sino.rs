//! Sinograms and the simulated measurement process.

use crate::grid::Grid;
use crate::scan::ScanGeometry;
use crate::siddon::trace_ray;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sinogram: `M × N` measurements, row-major by projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Sinogram {
    scan: ScanGeometry,
    data: Vec<f32>,
}

impl Sinogram {
    /// Wrap existing measurement data.
    ///
    /// # Panics
    /// Panics if `data.len() != M × N`.
    pub fn new(scan: ScanGeometry, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), scan.num_rays());
        Sinogram { scan, data }
    }

    /// An all-zero sinogram.
    pub fn zeros(scan: ScanGeometry) -> Self {
        Sinogram {
            scan,
            data: vec![0.0; scan.num_rays()],
        }
    }

    /// The scan geometry.
    pub fn scan(&self) -> ScanGeometry {
        self.scan
    }

    /// Flat measurement data (row-major by projection).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable measurement data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Measurement for `(projection, channel)`.
    #[inline]
    pub fn get(&self, projection: u32, channel: u32) -> f32 {
        self.data[self.scan.ray_index(projection, channel) as usize]
    }

    /// Consume into the flat data vector.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Build a sinogram from raw transmission counts: the detector
    /// measures photon counts `I`, and Beer's law (§2.1) gives the line
    /// integrals as `p = −ln(I / I₀)`. Counts of zero are clamped to half
    /// a photon, as real pipelines do, to keep the log finite.
    pub fn from_transmission(scan: ScanGeometry, counts: &[f32], incident: f32) -> Self {
        assert_eq!(counts.len(), scan.num_rays());
        assert!(incident > 0.0, "incident flux must be positive");
        let data = counts
            .iter()
            .map(|&k| -(k.max(0.5) / incident).ln())
            .collect();
        Sinogram::new(scan, data)
    }
}

/// Photon-statistics model for simulated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// Ideal noise-free line integrals.
    None,
    /// Beer's-law transmission with Poisson photon counting:
    /// `I = I₀·exp(−s·p)`, `k ~ Poisson(I)`, `p̂ = −ln(k/I₀)/s`.
    Poisson {
        /// Incident photon count per ray (`I₀`); lower = noisier.
        incident: f64,
        /// Attenuation scale `s` converting line integrals to optical depth.
        scale: f64,
    },
}

/// Forward-simulate the measurement of a rasterized image.
///
/// `image` is the row-major `n × n` tomogram (as produced by
/// [`crate::Phantom::rasterize`]); the result is the sinogram of exact line
/// integrals, optionally corrupted by photon noise (deterministic in
/// `seed`).
pub fn simulate_sinogram(
    image: &[f32],
    grid: &Grid,
    scan: &ScanGeometry,
    noise: NoiseModel,
    seed: u64,
) -> Sinogram {
    assert_eq!(image.len(), grid.num_pixels());
    let mut data = vec![0.0f32; scan.num_rays()];
    for p in 0..scan.num_projections() {
        for c in 0..scan.num_channels() {
            let ray = scan.ray(p, c);
            let mut acc = 0.0f64;
            trace_ray(grid, &ray, |pixel, len| {
                acc += image[pixel as usize] as f64 * len as f64;
            });
            data[scan.ray_index(p, c) as usize] = acc as f32;
        }
    }
    if let NoiseModel::Poisson { incident, scale } = noise {
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in &mut data {
            let lambda = incident * (-(*v as f64) * scale).exp();
            let k = sample_poisson(&mut rng, lambda).max(0.5);
            *v = (-(k / incident).ln() / scale) as f32;
        }
    }
    Sinogram::new(*scan, data)
}

/// Sample a Poisson variate: Knuth's method for small λ, a normal
/// approximation for large λ (adequate for photon-count simulation).
fn sample_poisson(rng: &mut SmallRng, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k as f64;
            }
            k += 1;
        }
    } else {
        // Box–Muller normal approximation N(λ, λ).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::disk;

    #[test]
    fn disk_projection_matches_analytic_chord() {
        // Projection of a uniform disk of radius r (normalized) at offset s
        // is 2·v·sqrt(R² − s²) in pixel units, where R = r·n/2.
        let n = 128u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(8, n);
        let img = disk(0.5, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let r_pix = 0.5 * n as f64 / 2.0;
        for p in 0..scan.num_projections() {
            for c in (0..n).step_by(13) {
                let s = scan.channel_offset(c);
                let expect = if s.abs() < r_pix {
                    2.0 * (r_pix * r_pix - s * s).sqrt()
                } else {
                    0.0
                };
                let got = sino.get(p, c) as f64;
                // Rasterization quantizes the disk edge; allow ~2 pixels.
                assert!((got - expect).abs() < 2.5, "p={p} c={c}: {got} vs {expect}");
            }
        }
    }

    #[test]
    fn projection_is_rotation_invariant_for_disk() {
        let n = 64u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(16, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        // The central channel's value should barely vary with angle.
        let c = n / 2;
        let vals: Vec<f32> = (0..16).map(|p| sino.get(p, c)).collect();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        for v in vals {
            assert!((v - mean).abs() / mean < 0.05, "{v} vs mean {mean}");
        }
    }

    #[test]
    fn mass_conservation_across_angles() {
        // Sum of each projection equals total image mass (for rays that
        // cover the object), a standard Radon transform identity.
        let n = 64u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(12, n);
        let img = disk(0.4, 2.0).rasterize(n);
        let mass: f64 = img.iter().map(|&v| v as f64).sum();
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        for p in 0..12 {
            let proj_sum: f64 = (0..n).map(|c| sino.get(p, c) as f64).sum();
            assert!(
                (proj_sum - mass).abs() / mass < 0.02,
                "angle {p}: {proj_sum} vs {mass}"
            );
        }
    }

    #[test]
    fn poisson_noise_is_deterministic_and_unbiased() {
        let n = 32u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(8, n);
        let img = disk(0.5, 1.0).rasterize(n);
        let clean = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let noise = NoiseModel::Poisson {
            incident: 1e5,
            scale: 0.05,
        };
        let a = simulate_sinogram(&img, &grid, &scan, noise, 42);
        let b = simulate_sinogram(&img, &grid, &scan, noise, 42);
        assert_eq!(a.data(), b.data());
        let c = simulate_sinogram(&img, &grid, &scan, noise, 43);
        assert_ne!(a.data(), c.data());
        // High photon count => small relative error.
        let err: f64 = a
            .data()
            .iter()
            .zip(clean.data())
            .map(|(&x, &y)| (x - y).abs() as f64)
            .sum::<f64>()
            / a.data().len() as f64;
        assert!(err < 0.5, "mean abs noise {err}");
    }

    #[test]
    fn sample_poisson_mean_is_lambda() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &lambda in &[0.5, 5.0, 50.0, 5000.0] {
            let k = 4000;
            let mean: f64 = (0..k)
                .map(|_| sample_poisson(&mut rng, lambda))
                .sum::<f64>()
                / k as f64;
            assert!(
                (mean - lambda).abs() < 4.0 * (lambda / k as f64).sqrt() + 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn transmission_inverts_beers_law() {
        let scan = ScanGeometry::new(1, 4);
        let i0 = 1000.0f32;
        let p_true = [0.0f32, 0.5, 1.0, 2.0];
        let counts: Vec<f32> = p_true.iter().map(|&p| i0 * (-p).exp()).collect();
        let sino = Sinogram::from_transmission(scan, &counts, i0);
        for (got, want) in sino.data().iter().zip(&p_true) {
            assert!((got - want).abs() < 1e-5, "{got} vs {want}");
        }
    }

    #[test]
    fn zero_counts_are_clamped_not_infinite() {
        let scan = ScanGeometry::new(1, 2);
        let sino = Sinogram::from_transmission(scan, &[0.0, 1.0], 100.0);
        assert!(sino.data().iter().all(|v| v.is_finite()));
        assert!(sino.data()[0] > sino.data()[1]);
    }

    #[test]
    fn zeros_has_right_shape() {
        let scan = ScanGeometry::new(3, 5);
        let s = Sinogram::zeros(scan);
        assert_eq!(s.data().len(), 15);
        assert_eq!(s.get(2, 4), 0.0);
    }
}

//! Joseph's projection method: the linear-interpolation alternative to
//! Siddon's exact intersection lengths.
//!
//! Joseph's method steps along the ray's dominant axis one gridline at a
//! time and splits each step's contribution between the two pixels
//! adjacent to the crossing point, weighted by linear interpolation. It
//! yields ~2 matrix entries per crossed row (vs Siddon's 1–2) with
//! smoother discretization error — it is the default projector of several
//! reconstruction packages the paper compares against (TomoPy), so having
//! both models makes the projector choice an ablation rather than an
//! assumption.

use crate::grid::Grid;
use crate::scan::Ray;

/// Trace `ray` through `grid` with Joseph's method, invoking
/// `emit(pixel_index, weight)` per touched pixel. Weights approximate
/// intersection lengths: their sum approximates the chord length through
/// the pixel grid.
pub fn trace_ray_joseph<F: FnMut(u32, f32)>(grid: &Grid, ray: &Ray, mut emit: F) {
    let n = grid.n() as i64;
    let lo = grid.min_coord();
    let (ox, oy) = ray.origin;
    let (dx, dy) = ray.dir;

    // Dominant axis: step along it one unit per row/column.
    if dx.abs() >= dy.abs() {
        // March along x: at each pixel-column centre, interpolate in y.
        let step = 1.0 / dx.abs(); // path length per unit x
        for i in 0..n {
            let xc = lo + i as f64 + 0.5;
            let t = (xc - ox) / dx;
            let y = oy + t * dy;
            let yf = y - lo - 0.5; // in pixel-centre coordinates
            let j0 = yf.floor() as i64;
            let frac = (yf - j0 as f64) as f32;
            let w = step as f32;
            if j0 >= 0 && j0 < n {
                // in-range: j0 was bounds-checked against the grid dimension just above
                emit(grid.pixel_index(i as u32, j0 as u32), w * (1.0 - frac));
            }
            if j0 + 1 >= 0 && j0 + 1 < n {
                // in-range: j0 + 1 was bounds-checked against the grid dimension just above
                emit(grid.pixel_index(i as u32, (j0 + 1) as u32), w * frac);
            }
        }
    } else {
        // March along y.
        let step = 1.0 / dy.abs();
        for j in 0..n {
            let yc = lo + j as f64 + 0.5;
            let t = (yc - oy) / dy;
            let x = ox + t * dx;
            let xf = x - lo - 0.5;
            let i0 = xf.floor() as i64;
            let frac = (xf - i0 as f64) as f32;
            let w = step as f32;
            if i0 >= 0 && i0 < n {
                // in-range: i0 was bounds-checked against the grid dimension just above
                emit(grid.pixel_index(i0 as u32, j as u32), w * (1.0 - frac));
            }
            if i0 + 1 >= 0 && i0 + 1 < n {
                // in-range: i0 + 1 was bounds-checked against the grid dimension just above
                emit(grid.pixel_index((i0 + 1) as u32, j as u32), w * frac);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanGeometry;
    use crate::siddon::trace_ray;

    fn collect(grid: &Grid, ray: &Ray) -> Vec<(u32, f32)> {
        let mut out = Vec::new();
        trace_ray_joseph(grid, ray, |p, w| out.push((p, w)));
        out
    }

    #[test]
    fn axis_aligned_ray_matches_siddon_exactly() {
        let g = Grid::new(8);
        let ray = Ray {
            origin: (0.5, 0.0),
            dir: (0.0, 1.0),
        };
        let j = collect(&g, &ray);
        let total: f32 = j.iter().map(|&(_, w)| w).sum();
        assert!((total - 8.0).abs() < 1e-5);
        // All weight lands in column 4 (offset 0.5 = pixel-centre hit).
        for &(p, w) in &j {
            if w > 0.0 {
                let (i, _) = g.pixel_coords(p);
                assert_eq!(i, 4);
            }
        }
    }

    #[test]
    fn weights_sum_approximates_chord() {
        let g = Grid::new(32);
        let scan = ScanGeometry::new(24, 32);
        for p in 0..24 {
            for c in (2..30).step_by(3) {
                let ray = scan.ray(p, c);
                let joseph: f64 = collect(&g, &ray).iter().map(|&(_, w)| w as f64).sum();
                let mut siddon = 0f64;
                trace_ray(&g, &ray, |_, len| siddon += len as f64);
                // Joseph truncates at the grid boundary rows; allow a few
                // per cent plus one step of slack.
                assert!(
                    (joseph - siddon).abs() < 0.05 * siddon + 1.5,
                    "p={p} c={c}: joseph {joseph} vs siddon {siddon}"
                );
            }
        }
    }

    #[test]
    fn projections_close_to_siddon_on_smooth_image() {
        let g = Grid::new(64);
        let scan = ScanGeometry::new(16, 64);
        let img = crate::phantom::disk(0.6, 1.0).rasterize(64);
        for p in 0..16 {
            for c in (8..56).step_by(5) {
                let ray = scan.ray(p, c);
                let mut js = 0f64;
                trace_ray_joseph(&g, &ray, |pix, w| js += img[pix as usize] as f64 * w as f64);
                let mut sd = 0f64;
                trace_ray(&g, &ray, |pix, len| {
                    sd += img[pix as usize] as f64 * len as f64
                });
                assert!(
                    (js - sd).abs() < 0.05 * sd.abs() + 1.0,
                    "p={p} c={c}: {js} vs {sd}"
                );
            }
        }
    }

    #[test]
    fn at_most_two_entries_per_step() {
        let g = Grid::new(16);
        let scan = ScanGeometry::new(12, 16);
        for p in 0..12 {
            let entries = collect(&g, &scan.ray(p, 8));
            assert!(entries.len() <= 2 * 16, "{}", entries.len());
        }
    }

    #[test]
    fn weights_are_nonnegative() {
        let g = Grid::new(24);
        let scan = ScanGeometry::new(10, 24);
        for p in 0..10 {
            for c in 0..24 {
                for (_, w) in collect(&g, &scan.ray(p, c)) {
                    assert!(w >= 0.0);
                }
            }
        }
    }
}

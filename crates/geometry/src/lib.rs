//! Parallel-beam XCT scan geometry, Siddon ray tracing, synthetic phantoms,
//! and the datasets of the MemXCT evaluation (SC '19, §2 and Table 3).
//!
//! This crate models the *measurement process*: a sample on a rotation
//! stage, illuminated by parallel x-rays, measured by a 1D detector at many
//! rotation angles (Fig 2 of the paper). The key exports are:
//!
//! - [`Grid`]: the tomogram pixel grid;
//! - [`ScanGeometry`]: the set of (projection, channel) rays;
//! - [`trace_ray`]: Siddon-style exact radiological path computation, the
//!   kernel that compute-centric codes run every iteration and MemXCT
//!   memoizes once;
//! - [`Phantom`]: procedural samples (Shepp–Logan, shale-like, brain-like);
//! - [`Dataset`]: the six evaluation datasets (ADS1–4, RDS1, RDS2) with
//!   their Table 3 memory footprints;
//! - [`simulate_sinogram`]: forward measurement with optional photon noise.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod correct;
mod dataset;
mod fanbeam;
mod grid;
pub mod io;
mod joseph;
mod phantom;
mod scan;
mod siddon;
mod sino;
mod volume;

pub use correct::{correct_center, estimate_center_shift, remove_rings, shift_sinogram};
pub use fanbeam::{fan_sinogram, simulate_sinogram_fan, FanBeamGeometry};
pub use volume::{phantom_volume, simulate_volume, Volume};

pub use dataset::{
    Dataset, DatasetFootprint, SampleKind, ADS1, ADS2, ADS3, ADS4, ALL_DATASETS, RDS1, RDS2,
};
pub use grid::Grid;
pub use joseph::trace_ray_joseph;
pub use phantom::{brain_like, disk, shale_like, shepp_logan, Ellipse, Phantom};
pub use scan::{Ray, ScanGeometry};
pub use siddon::{trace_ray, trace_ray_collect, RaySample};
pub use sino::{simulate_sinogram, NoiseModel, Sinogram};

//! 3D volumes as slice stacks.
//!
//! Parallel-beam XCT reconstructs a 3D object one z-slice at a time (the
//! paper's full mouse brain is 11293 independent slices; Table 5's
//! "All Slices" column is the full-volume economics). A [`Volume`] is that
//! slice stack, and [`phantom_volume`] builds a z-varying procedural
//! object whose cross-sections shrink toward the poles like a real sample.

use crate::grid::Grid;
use crate::phantom::{Ellipse, Phantom};
use crate::scan::ScanGeometry;
use crate::sino::{simulate_sinogram, NoiseModel, Sinogram};

/// A stack of `n × n` row-major slices.
#[derive(Debug, Clone, PartialEq)]
pub struct Volume {
    n: u32,
    slices: Vec<Vec<f32>>,
}

impl Volume {
    /// Wrap existing slices (all must be `n × n`).
    pub fn new(n: u32, slices: Vec<Vec<f32>>) -> Self {
        assert!(slices
            .iter()
            .all(|s| s.len() == (n as usize) * (n as usize)));
        Volume { n, slices }
    }

    /// Slice side length.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Borrow one slice.
    pub fn slice(&self, z: usize) -> &[f32] {
        &self.slices[z]
    }

    /// All slices.
    pub fn slices(&self) -> &[Vec<f32>] {
        &self.slices
    }

    /// Total voxels.
    pub fn num_voxels(&self) -> usize {
        self.slices.len() * (self.n as usize) * (self.n as usize)
    }
}

/// Scale a phantom's ellipses about the origin (used to shrink
/// cross-sections toward the volume's poles).
fn scaled_phantom(base: &Phantom, factor: f64) -> Phantom {
    let ellipses: Vec<Ellipse> = base
        .ellipses()
        .iter()
        .map(|e| Ellipse {
            cx: e.cx * factor,
            cy: e.cy * factor,
            a: (e.a * factor).max(1e-6),
            b: (e.b * factor).max(1e-6),
            theta: e.theta,
            value: e.value,
        })
        .collect();
    Phantom::from_ellipses(base.name(), ellipses)
}

/// Build a z-varying volume from a base phantom: slice `z`'s cross-section
/// is the base scaled by `sqrt(1 − z²)` (a spheroidal object), with `z`
/// spanning `[-0.9, 0.9]` across the stack.
pub fn phantom_volume(base: &Phantom, n: u32, num_slices: usize) -> Volume {
    assert!(num_slices > 0);
    let slices = (0..num_slices)
        .map(|i| {
            let z = if num_slices == 1 {
                0.0
            } else {
                -0.9 + 1.8 * i as f64 / (num_slices - 1) as f64
            };
            let factor = (1.0 - z * z).max(0.0).sqrt();
            scaled_phantom(base, factor).rasterize(n)
        })
        .collect();
    Volume::new(n, slices)
}

/// Simulate the measurement of every slice (one sinogram per slice,
/// deterministic per-slice seeds derived from `seed`).
pub fn simulate_volume(
    volume: &Volume,
    scan: &ScanGeometry,
    noise: NoiseModel,
    seed: u64,
) -> Vec<Sinogram> {
    let grid = Grid::new(volume.n());
    volume
        .slices()
        .iter()
        .enumerate()
        .map(|(z, slice)| simulate_sinogram(slice, &grid, scan, noise, seed ^ (z as u64) << 32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::{disk, shepp_logan};

    #[test]
    fn volume_shape() {
        let v = phantom_volume(&shepp_logan(), 32, 5);
        assert_eq!(v.n(), 32);
        assert_eq!(v.num_slices(), 5);
        assert_eq!(v.num_voxels(), 5 * 32 * 32);
    }

    #[test]
    fn cross_sections_shrink_toward_poles() {
        let v = phantom_volume(&disk(0.8, 1.0), 64, 9);
        let mass = |s: &[f32]| s.iter().map(|&x| x as f64).sum::<f64>();
        let mid = mass(v.slice(4));
        let edge = mass(v.slice(0));
        assert!(mid > 2.0 * edge, "mid {mid} vs pole {edge}");
        // Symmetric profile.
        assert!((mass(v.slice(1)) - mass(v.slice(7))).abs() / mid < 0.05);
    }

    #[test]
    fn simulate_volume_gives_one_sinogram_per_slice() {
        let v = phantom_volume(&disk(0.5, 1.0), 16, 3);
        let scan = ScanGeometry::new(8, 16);
        let sinos = simulate_volume(&v, &scan, NoiseModel::None, 7);
        assert_eq!(sinos.len(), 3);
        // Central slice projects more mass than the pole slice.
        let sum = |s: &Sinogram| s.data().iter().map(|&x| x as f64).sum::<f64>();
        assert!(sum(&sinos[1]) > sum(&sinos[0]));
    }

    #[test]
    fn per_slice_noise_is_independent_but_deterministic() {
        let v = phantom_volume(&disk(0.5, 1.0), 16, 2);
        let scan = ScanGeometry::new(8, 16);
        let noise = NoiseModel::Poisson {
            incident: 1e4,
            scale: 0.05,
        };
        let a = simulate_volume(&v, &scan, noise, 7);
        let b = simulate_volume(&v, &scan, noise, 7);
        assert_eq!(a[0].data(), b[0].data());
        assert_eq!(a[1].data(), b[1].data());
    }

    #[test]
    fn single_slice_volume_is_the_base_phantom() {
        let base = shepp_logan();
        let v = phantom_volume(&base, 24, 1);
        assert_eq!(v.slice(0), base.rasterize(24).as_slice());
    }
}

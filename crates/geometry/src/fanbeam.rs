//! Fan-beam scan geometry (divergent rays from a point source).
//!
//! The paper's datasets are all parallel-beam ("Considering parallel beam
//! geometry...", §2.1), the natural model for synchrotron light. Fan-beam
//! is the lab-source/medical counterpart the related work references
//! (e.g. Sidky et al.'s divergent-beam CT); the memory-centric machinery
//! is geometry-agnostic — rays are rays — so this module provides the ray
//! generator, and the same [`crate::trace_ray`] + `xct-sparse` pipeline
//! memoizes fan-beam projection matrices unchanged.

use crate::grid::Grid;
use crate::scan::Ray;
use crate::sino::Sinogram;

/// Fan-beam geometry with a flat (equispaced) detector.
///
/// For projection angle θ the source sits at distance `source_distance`
/// from the rotation axis on the `−v(θ)` side (`v = (−sin θ, cos θ)`), and
/// the detector line sits at `detector_distance` on the `+v` side, with
/// `num_channels` unit-pitch channels along `u = (cos θ, sin θ)`. Angles
/// cover the full circle `[0, 2π)` (fan-beam needs it; parallel-beam only
/// needs `[0, π)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanBeamGeometry {
    /// Number of projection angles over `[0, 2π)`.
    pub num_projections: u32,
    /// Number of detector channels.
    pub num_channels: u32,
    /// Source-to-rotation-axis distance (pixel units). Must exceed the
    /// grid's circumradius or rays start inside the object.
    pub source_distance: f64,
    /// Rotation-axis-to-detector distance (pixel units).
    pub detector_distance: f64,
}

impl FanBeamGeometry {
    /// Create a geometry, validating the distances.
    pub fn new(
        num_projections: u32,
        num_channels: u32,
        source_distance: f64,
        detector_distance: f64,
    ) -> Self {
        assert!(num_projections > 0 && num_channels > 0);
        assert!(source_distance > 0.0 && detector_distance >= 0.0);
        FanBeamGeometry {
            num_projections,
            num_channels,
            source_distance,
            detector_distance,
        }
    }

    /// Total rays (`M × N`).
    pub fn num_rays(&self) -> usize {
        (self.num_projections as usize) * (self.num_channels as usize)
    }

    /// Geometric magnification at the rotation axis:
    /// `(R_src + R_det) / R_src`.
    pub fn magnification(&self) -> f64 {
        (self.source_distance + self.detector_distance) / self.source_distance
    }

    /// Projection angle of view `p`, over the full circle.
    pub fn angle(&self, p: u32) -> f64 {
        debug_assert!(p < self.num_projections);
        std::f64::consts::TAU * (p as f64) / (self.num_projections as f64)
    }

    /// Signed detector offset of channel `c`.
    pub fn channel_offset(&self, c: u32) -> f64 {
        debug_assert!(c < self.num_channels);
        c as f64 - (self.num_channels as f64 - 1.0) / 2.0
    }

    /// The ray from the source through detector channel `c` at view `p`.
    pub fn ray(&self, p: u32, c: u32) -> Ray {
        let theta = self.angle(p);
        let (sin_t, cos_t) = theta.sin_cos();
        let u = (cos_t, sin_t); // detector axis
        let v = (-sin_t, cos_t); // central ray direction
        let source = (-self.source_distance * v.0, -self.source_distance * v.1);
        let s = self.channel_offset(c);
        let det = (
            self.detector_distance * v.0 + s * u.0,
            self.detector_distance * v.1 + s * u.1,
        );
        let dir = (det.0 - source.0, det.1 - source.1);
        let norm = (dir.0 * dir.0 + dir.1 * dir.1).sqrt();
        Ray {
            origin: source,
            dir: (dir.0 / norm, dir.1 / norm),
        }
    }

    /// Flat sinogram index of `(p, c)`.
    pub fn ray_index(&self, p: u32, c: u32) -> u32 {
        p * self.num_channels + c
    }
}

/// Forward-simulate a fan-beam measurement of a row-major image (noise-
/// free line integrals; feed through [`crate::NoiseModel`] handling by
/// converting via [`crate::Sinogram::from_transmission`] if needed).
pub fn simulate_sinogram_fan(image: &[f32], grid: &Grid, geom: &FanBeamGeometry) -> Vec<f32> {
    assert_eq!(image.len(), grid.num_pixels());
    let mut data = vec![0f32; geom.num_rays()];
    for p in 0..geom.num_projections {
        for c in 0..geom.num_channels {
            let ray = geom.ray(p, c);
            let mut acc = 0f64;
            crate::siddon::trace_ray(grid, &ray, |pixel, len| {
                acc += image[pixel as usize] as f64 * len as f64;
            });
            data[geom.ray_index(p, c) as usize] = acc as f32;
        }
    }
    data
}

/// Build a fan-beam sinogram wrapper: fan-beam data reuses [`Sinogram`]'s
/// `M × N` layout with a parallel [`crate::ScanGeometry`] of the same
/// shape (the container is layout-only; the geometry travels separately).
pub fn fan_sinogram(geom: &FanBeamGeometry, data: Vec<f32>) -> Sinogram {
    Sinogram::new(
        crate::scan::ScanGeometry::new(geom.num_projections, geom.num_channels),
        data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::disk;

    fn geom(n: u32) -> FanBeamGeometry {
        // Source well outside the grid's circumradius (n/√2).
        FanBeamGeometry::new(64, n, 2.0 * n as f64, n as f64)
    }

    #[test]
    fn rays_start_outside_and_hit_the_grid() {
        let n = 32u32;
        let grid = Grid::new(n);
        let g = geom(n);
        for p in (0..g.num_projections).step_by(7) {
            let ray = g.ray(p, n / 2);
            // Source outside the grid square.
            assert!(ray.origin.0.abs() > grid.max_coord() || ray.origin.1.abs() > grid.max_coord());
            // Central ray passes near the origin.
            let cross = ray.origin.0 * ray.dir.1 - ray.origin.1 * ray.dir.0;
            assert!(cross.abs() < 1.0, "central ray misses the axis: {cross}");
        }
    }

    #[test]
    fn ray_directions_are_unit() {
        let g = geom(16);
        for p in 0..g.num_projections {
            for c in 0..g.num_channels {
                let r = g.ray(p, c);
                let n = (r.dir.0 * r.dir.0 + r.dir.1 * r.dir.1).sqrt();
                assert!((n - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn magnification_formula() {
        let g = FanBeamGeometry::new(8, 8, 100.0, 50.0);
        assert!((g.magnification() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn opposite_views_see_mirrored_central_profiles() {
        // For a centred object, the view at θ and θ+π measure the same
        // fan through the object (mirrored in the channel axis).
        let n = 48u32;
        let grid = Grid::new(n);
        let g = FanBeamGeometry::new(16, n, 3.0 * n as f64, n as f64);
        let img = disk(0.5, 1.0).rasterize(n);
        let sino = simulate_sinogram_fan(&img, &grid, &g);
        let nn = n as usize;
        let view = |p: usize| &sino[p * nn..(p + 1) * nn];
        let a = view(0);
        let b = view(8); // θ + π for 16 views
        for c in 0..nn {
            let mirrored = b[nn - 1 - c];
            assert!(
                (a[c] - mirrored).abs() < 0.05 * a[c].abs().max(1.0),
                "channel {c}: {} vs {}",
                a[c],
                mirrored
            );
        }
    }

    #[test]
    fn fan_projection_of_disk_is_widest_at_center() {
        let n = 48u32;
        let grid = Grid::new(n);
        let g = geom(n);
        let img = disk(0.5, 1.0).rasterize(n);
        let sino = simulate_sinogram_fan(&img, &grid, &g);
        let nn = n as usize;
        let center = sino[nn / 2];
        let edge = sino[1];
        assert!(center > 2.0 * edge.max(0.1), "center {center} edge {edge}");
    }

    #[test]
    fn memoized_fan_matrix_matches_direct_simulation() {
        // The memory-centric pipeline is geometry-agnostic: build the
        // fan-beam CSR with the shared tracer + sparse toolkit and check
        // SpMV equals the direct on-the-fly simulation.
        let n = 24u32;
        let grid = Grid::new(n);
        let g = FanBeamGeometry::new(20, n, 2.5 * n as f64, n as f64);
        let rows: Vec<Vec<(u32, f32)>> = (0..g.num_projections)
            .flat_map(|p| (0..g.num_channels).map(move |c| (p, c)))
            .map(|(p, c)| {
                let mut row = Vec::new();
                crate::siddon::trace_ray(&grid, &g.ray(p, c), |pix, len| row.push((pix, len)));
                row
            })
            .collect();
        // (Build the matrix shape by hand to avoid a dev-dependency on
        // xct-sparse here: verify row dot products directly.)
        let img = disk(0.6, 2.0).rasterize(n);
        let direct = simulate_sinogram_fan(&img, &grid, &g);
        for (i, row) in rows.iter().enumerate() {
            let acc: f64 = row
                .iter()
                .map(|&(pix, len)| img[pix as usize] as f64 * len as f64)
                .sum();
            assert!((acc as f32 - direct[i]).abs() < 1e-3, "ray {i}");
        }
    }
}

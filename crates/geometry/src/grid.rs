//! The tomogram pixel grid.

/// A square `n × n` pixel grid centred on the rotation axis.
///
/// Physical coordinates place the grid over `[-n/2, n/2] × [-n/2, n/2]`
/// with unit pixel pitch, so pixel `(i, j)` covers
/// `[i - n/2, i + 1 - n/2] × [j - n/2, j + 1 - n/2]`. Pixel indices are
/// row-major: `index = j * n + i` (x fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    n: u32,
}

impl Grid {
    /// Create an `n × n` grid.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "grid must be non-empty");
        Grid { n }
    }

    /// Pixels per side.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Total number of pixels.
    #[inline]
    pub fn num_pixels(&self) -> usize {
        (self.n as usize) * (self.n as usize)
    }

    /// Physical coordinate of the grid's low edge (both axes).
    #[inline]
    pub fn min_coord(&self) -> f64 {
        -(self.n as f64) / 2.0
    }

    /// Physical coordinate of the grid's high edge (both axes).
    #[inline]
    pub fn max_coord(&self) -> f64 {
        (self.n as f64) / 2.0
    }

    /// Row-major pixel index of cell `(i, j)`.
    #[inline]
    pub fn pixel_index(&self, i: u32, j: u32) -> u32 {
        debug_assert!(i < self.n && j < self.n);
        j * self.n + i
    }

    /// Inverse of [`Grid::pixel_index`].
    #[inline]
    pub fn pixel_coords(&self, index: u32) -> (u32, u32) {
        (index % self.n, index / self.n)
    }

    /// Physical centre of pixel `(i, j)`.
    #[inline]
    pub fn pixel_center(&self, i: u32, j: u32) -> (f64, f64) {
        (
            self.min_coord() + i as f64 + 0.5,
            self.min_coord() + j as f64 + 0.5,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_are_centred() {
        let g = Grid::new(8);
        assert_eq!(g.min_coord(), -4.0);
        assert_eq!(g.max_coord(), 4.0);
        assert_eq!(g.pixel_center(0, 0), (-3.5, -3.5));
        assert_eq!(g.pixel_center(7, 7), (3.5, 3.5));
    }

    #[test]
    fn index_roundtrip() {
        let g = Grid::new(13);
        for j in 0..13 {
            for i in 0..13 {
                let idx = g.pixel_index(i, j);
                assert_eq!(g.pixel_coords(idx), (i, j));
            }
        }
    }

    #[test]
    fn odd_grid_centre_pixel_straddles_origin() {
        let g = Grid::new(3);
        assert_eq!(g.pixel_center(1, 1), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_grid_panics() {
        Grid::new(0);
    }
}

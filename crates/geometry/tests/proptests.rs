//! Property tests for ray tracing: conservation of chord length, bounds,
//! and contiguity hold for arbitrary scan geometries.

use proptest::prelude::*;
use xct_geometry::{trace_ray_collect, Grid, Ray, ScanGeometry};

fn chord(grid: &Grid, ray: &Ray) -> f64 {
    let (lo, hi) = (grid.min_coord(), grid.max_coord());
    let mut t0 = f64::NEG_INFINITY;
    let mut t1 = f64::INFINITY;
    for (o, d) in [(ray.origin.0, ray.dir.0), (ray.origin.1, ray.dir.1)] {
        if d.abs() < 1e-12 {
            if o < lo || o > hi {
                return 0.0;
            }
        } else {
            let a = (lo - o) / d;
            let b = (hi - o) / d;
            t0 = t0.max(a.min(b));
            t1 = t1.min(a.max(b));
        }
    }
    (t1 - t0).max(0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn traced_length_equals_chord(
        n in 2u32..96,
        angle in 0.0f64..std::f64::consts::PI,
        offset in -80.0f64..80.0,
    ) {
        let grid = Grid::new(n);
        let (s, c) = angle.sin_cos();
        let ray = Ray { origin: (offset * c, offset * s), dir: (-s, c) };
        let samples = trace_ray_collect(&grid, &ray);
        let total: f64 = samples.iter().map(|x| x.length as f64).sum();
        let expect = chord(&grid, &ray);
        prop_assert!((total - expect).abs() < 1e-4,
            "traced {total} vs chord {expect} (n={n}, angle={angle}, s={offset})");
    }

    #[test]
    fn traced_pixels_in_bounds_and_unique(
        n in 2u32..64,
        angle in 0.0f64..std::f64::consts::PI,
        offset in -40.0f64..40.0,
    ) {
        let grid = Grid::new(n);
        let (s, c) = angle.sin_cos();
        let ray = Ray { origin: (offset * c, offset * s), dir: (-s, c) };
        let samples = trace_ray_collect(&grid, &ray);
        let mut seen = std::collections::HashSet::new();
        for smp in &samples {
            prop_assert!((smp.pixel as usize) < grid.num_pixels());
            prop_assert!(smp.length >= 0.0);
            prop_assert!(smp.length <= (2f32).sqrt() + 1e-5);
            prop_assert!(seen.insert(smp.pixel));
        }
    }

    #[test]
    fn scan_rays_all_have_positive_coverage(m in 1u32..12, n in 4u32..48) {
        // Every central channel must hit the grid.
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        for p in 0..m {
            let mid = scan.ray(p, n / 2);
            let samples = trace_ray_collect(&grid, &mid);
            prop_assert!(!samples.is_empty());
        }
    }
}

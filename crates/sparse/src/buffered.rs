//! Multi-stage input buffering (paper §3.3, Listing 3).
//!
//! Rows are grouped into partitions of `partsize`. Each partition's
//! irregular input footprint (the distinct `x` entries it touches) is
//! staged through a small buffer of at most `buffsize` elements: for each
//! stage, the kernel first *gathers* the stage's footprint from `x` into
//! the buffer (regular writes, one irregular read each), then performs the
//! FMAs reading the buffer with **16-bit** indices instead of 32-bit global
//! ones — saving 25 % of the regular-data bandwidth (§3.3.5).
//!
//! Because both domains are Hilbert-ordered, consecutive entries of the
//! sorted footprint are spatially close, so stages inherit data locality
//! ("stages are determined with respect to Hilbert ordering").

use crate::csr::CsrMatrix;
use crate::lanes::{reduce_lanes, LANES};
use rayon::prelude::*;
use std::fmt;

/// Lane-split accumulation stage of Listing 3: `Σ buf[ind[k]] * vals[k]`
/// over one `(stage, row)` entry run, in the deterministic lane order of
/// [`crate::lanes`] (generic twin of [`crate::lanes::row_dot_u16`] so the
/// u32 ablation layout shares the kernel).
#[inline]
fn row_dot_buf<I: BufferIndex>(ind: &[I], vals: &[f32], buf: &[f32]) -> f32 {
    let mut acc = [0f32; LANES];
    let mut gat = [0f32; LANES];
    let ci = ind.chunks_exact(LANES);
    let vi = vals.chunks_exact(LANES);
    let (ct, vt) = (ci.remainder(), vi.remainder());
    for (c8, v8) in ci.zip(vi) {
        for l in 0..LANES {
            gat[l] = buf[c8[l].to_usize()];
        }
        for l in 0..LANES {
            acc[l] += gat[l] * v8[l];
        }
    }
    let mut s = reduce_lanes(&acc);
    for (c, v) in ct.iter().zip(vt) {
        s += buf[c.to_usize()] * v;
    }
    s
}

/// Why a buffered layout could not be constructed from a CSR source.
///
/// Construction is the *plan-build* step: it runs once, so it affords full
/// checked conversions. Only the SpMV inner loop (which runs per
/// iteration, after the plan has been validated) keeps unchecked index
/// arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// `partsize` was zero.
    ZeroPartitionSize,
    /// `buffsize` was zero or exceeds what the index type can address.
    BufferSize {
        /// Rejected buffer capacity (f32 elements).
        buffsize: usize,
        /// Largest capacity the index width can address.
        max: usize,
    },
    /// A buffer-local index did not fit the index type — the silent
    /// release-mode truncation this error replaces.
    IndexOverflow {
        /// The out-of-range buffer-local index.
        value: usize,
        /// Largest representable index.
        max: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ZeroPartitionSize => write!(f, "partition size must be positive"),
            LayoutError::BufferSize { buffsize, max } => write!(
                f,
                "buffer size {buffsize} must fit 16-bit addressing (or the index type's range): 1..={max}"
            ),
            LayoutError::IndexOverflow { value, max } => write!(
                f,
                "buffer-local index {value} exceeds the index type's maximum {max}"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Index type used to address the staging buffer. The paper's kernel uses
/// 16-bit indices ("16-bit addressing can address buffer sizes up to
/// 256 KB"), saving 25 % of regular-data bandwidth over 32-bit; the
/// 32-bit instantiation exists to measure that saving (the
/// `ablation_addressing` experiment).
pub trait BufferIndex: Copy + Default + Send + Sync + 'static {
    /// Largest addressable buffer (in elements).
    const MAX_BUFFER: usize;
    /// Bytes per stored index.
    const BYTES: u64;
    /// Checked narrowing conversion: the plan-build path. Rejects values
    /// the index type cannot represent instead of truncating.
    fn try_from_usize(v: usize) -> Result<Self, LayoutError>;
    /// Narrowing conversion (caller guarantees range — only valid after
    /// the layout has passed construction-time checking).
    fn from_usize(v: usize) -> Self;
    /// Widening conversion.
    fn to_usize(self) -> usize;
}

impl BufferIndex for u16 {
    const MAX_BUFFER: usize = u16::MAX as usize + 1;
    const BYTES: u64 = 2;
    #[inline]
    fn try_from_usize(v: usize) -> Result<Self, LayoutError> {
        u16::try_from(v).map_err(|_| LayoutError::IndexOverflow {
            value: v,
            max: u16::MAX as usize,
        })
    }
    #[inline]
    fn from_usize(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize);
        v as u16 // lint: allow(narrow-cast) blessed BufferIndex helper; guarded by try_from_usize at plan build
    }
    #[inline]
    fn to_usize(self) -> usize {
        self as usize
    }
}

impl BufferIndex for u32 {
    const MAX_BUFFER: usize = 1 << 31;
    const BYTES: u64 = 4;
    #[inline]
    fn try_from_usize(v: usize) -> Result<Self, LayoutError> {
        u32::try_from(v).map_err(|_| LayoutError::IndexOverflow {
            value: v,
            max: u32::MAX as usize,
        })
    }
    #[inline]
    fn from_usize(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        v as u32 // lint: allow(narrow-cast) blessed BufferIndex helper; guarded by try_from_usize at plan build
    }
    #[inline]
    fn to_usize(self) -> usize {
        self as usize
    }
}

/// The paper's kernel: 16-bit in-buffer addressing.
pub type BufferedCsr = BufferedCsrImpl<u16>;

/// 32-bit addressing variant, for the bandwidth-saving ablation.
pub type BufferedCsr32 = BufferedCsrImpl<u32>;

/// A CSR matrix re-laid-out for the multi-stage buffered kernel.
#[derive(Debug, Clone)]
pub struct BufferedCsrImpl<I: BufferIndex> {
    nrows: usize,
    ncols: usize,
    partsize: usize,
    buffsize: usize,
    nnz: usize,
    /// Global stage-id range of each partition: stages of partition `p`
    /// are `partdispl[p]..partdispl[p+1]`.
    partdispl: Vec<u32>,
    /// Offsets into `map` per stage (length `nstages + 1`); the stage's
    /// buffer occupancy ("stagenz") is the difference of two entries.
    stagedispl: Vec<usize>,
    /// Global column gathered into each buffer slot, stage-concatenated.
    map: Vec<u32>,
    /// Entry ranges per `(stage, local row)`: entries of local row `j`
    /// during stage `s` are `displ[s * partsize + j] .. displ[s * partsize + j + 1]`.
    displ: Vec<usize>,
    /// Buffer-local column indices.
    ind: Vec<I>,
    /// Values, grouped to match `ind`.
    val: Vec<f32>,
}

impl<I: BufferIndex> BufferedCsrImpl<I> {
    /// Re-layout `a` for partitions of `partsize` rows staged through a
    /// buffer of `buffsize` f32 elements.
    ///
    /// # Panics
    /// Panics if `buffsize` is 0 or exceeds `u16::MAX + 1` (the 16-bit
    /// addressing limit: "16-bit addressing can address buffer sizes up to
    /// 256 KB" of f32 data), or if `partsize` is 0.
    ///
    /// ```
    /// use xct_sparse::{BufferedCsr, CsrMatrix, spmv};
    /// let a = CsrMatrix::from_rows(4, &[
    ///     vec![(0, 1.0), (3, 2.0)],
    ///     vec![(1, 0.5), (2, 0.5)],
    /// ]);
    /// let buffered = BufferedCsr::from_csr(&a, 128, 2048);
    /// let x = [1.0, 2.0, 3.0, 4.0];
    /// assert_eq!(buffered.spmv(&x), spmv(&a, &x));
    /// ```
    pub fn from_csr(a: &CsrMatrix, partsize: usize, buffsize: usize) -> Self {
        // lint: allow(no-panic) documented panicking shim over try_from_csr
        match Self::try_from_csr(a, partsize, buffsize) {
            Ok(b) => b,
            Err(LayoutError::ZeroPartitionSize) => panic!("partition size must be positive"),
            Err(e @ LayoutError::BufferSize { .. }) => {
                panic!("buffer size must fit 16-bit addressing (or the index type's range): {e}")
            }
            Err(e) => panic!("invalid buffered layout: {e}"),
        }
    }

    /// Fallible [`BufferedCsrImpl::from_csr`]: every narrowing conversion
    /// on the plan-build path is checked, returning a typed
    /// [`LayoutError`] instead of panicking (or, in release mode,
    /// silently truncating buffer-local indices).
    pub fn try_from_csr(
        a: &CsrMatrix,
        partsize: usize,
        buffsize: usize,
    ) -> Result<Self, LayoutError> {
        if partsize == 0 {
            return Err(LayoutError::ZeroPartitionSize);
        }
        if buffsize == 0 || buffsize > I::MAX_BUFFER {
            return Err(LayoutError::BufferSize {
                buffsize,
                max: I::MAX_BUFFER,
            });
        }
        let nparts = a.nrows().div_ceil(partsize).max(1);
        let mut partdispl = Vec::with_capacity(nparts + 1);
        partdispl.push(0u32);
        let mut stagedispl = vec![0usize];
        let mut map: Vec<u32> = Vec::new();
        let mut displ = vec![0usize];
        let mut ind: Vec<I> = Vec::new();
        let mut val: Vec<f32> = Vec::new();

        let mut footprint: Vec<u32> = Vec::new();
        for base in (0..a.nrows().max(1)).step_by(partsize) {
            let rows = partsize.min(a.nrows().saturating_sub(base));
            // Distinct columns touched by this partition, ascending —
            // ascending rank order *is* Hilbert traversal order.
            footprint.clear();
            for i in base..base + rows {
                footprint.extend(a.row(i).map(|(c, _)| c));
            }
            footprint.sort_unstable();
            footprint.dedup();
            let nstages_here = footprint.len().div_ceil(buffsize);

            // Per-entry stage and buffer-local index, via rank in the
            // sorted footprint.
            let stage_of = |col: u32| -> (usize, usize) {
                let rank = footprint.binary_search(&col).expect("col in footprint");
                ((rank / buffsize), rank % buffsize)
            };

            // Counting sort of the partition's entries by (stage, row).
            let mut counts = vec![0usize; nstages_here * partsize];
            for i in base..base + rows {
                for (c, _) in a.row(i) {
                    let (s, _) = stage_of(c);
                    counts[s * partsize + (i - base)] += 1;
                }
            }
            let entry_base = ind.len();
            let mut offsets = Vec::with_capacity(counts.len() + 1);
            offsets.push(entry_base);
            for &c in &counts {
                offsets.push(offsets.last().unwrap() + c);
            }
            let total: usize = counts.iter().sum();
            ind.resize(entry_base + total, I::default());
            val.resize(entry_base + total, 0.0);
            let mut cursor = offsets.clone();
            for i in base..base + rows {
                for (c, v) in a.row(i) {
                    let (s, local) = stage_of(c);
                    let slot = s * partsize + (i - base);
                    let dst = cursor[slot];
                    cursor[slot] += 1;
                    // Checked narrowing: `local < buffsize <= MAX_BUFFER`
                    // holds by construction, but the plan-build path never
                    // trusts that silently (satellite of ISSUE 3).
                    ind[dst] = I::try_from_usize(local)?;
                    val[dst] = v;
                }
            }
            displ.extend_from_slice(&offsets[1..]);

            // Stage buffer maps.
            for chunk in footprint.chunks(buffsize) {
                map.extend_from_slice(chunk);
                stagedispl.push(map.len());
            }
            // in-range: stage counts are bounded by nnz, which fits u32
            partdispl.push(partdispl.last().unwrap() + nstages_here as u32);
        }

        Ok(BufferedCsrImpl {
            nrows: a.nrows(),
            ncols: a.ncols(),
            partsize,
            buffsize,
            nnz: a.nnz(),
            partdispl,
            stagedispl,
            map,
            displ,
            ind,
            val,
        })
    }

    /// Assemble a buffered layout directly from its raw arrays, with **no
    /// validation whatsoever**. This exists so static-analysis tooling
    /// (`xct-check`) can be tested against deliberately corrupted layouts;
    /// production code should always go through
    /// [`BufferedCsrImpl::try_from_csr`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts_unchecked(
        nrows: usize,
        ncols: usize,
        partsize: usize,
        buffsize: usize,
        nnz: usize,
        partdispl: Vec<u32>,
        stagedispl: Vec<usize>,
        map: Vec<u32>,
        displ: Vec<usize>,
        ind: Vec<I>,
        val: Vec<f32>,
    ) -> Self {
        BufferedCsrImpl {
            nrows,
            ncols,
            partsize,
            buffsize,
            nnz,
            partdispl,
            stagedispl,
            map,
            displ,
            ind,
            val,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeroes.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Row-partition size.
    pub fn partsize(&self) -> usize {
        self.partsize
    }

    /// Buffer capacity in f32 elements.
    pub fn buffsize(&self) -> usize {
        self.buffsize
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partdispl.len() - 1
    }

    /// Total number of stages across all partitions.
    pub fn num_stages(&self) -> usize {
        self.stagedispl.len() - 1
    }

    /// Number of stages of partition `p` (Fig 6(b)).
    pub fn stages_of_partition(&self, p: usize) -> usize {
        (self.partdispl[p + 1] - self.partdispl[p]) as usize
    }

    /// Total buffer-map slots (= Σ per-partition footprints); the staging
    /// overhead reads one u32 map entry and one irregular f32 per slot.
    pub fn map_len(&self) -> usize {
        self.map.len()
    }

    /// Raw per-partition stage ranges (`partdispl`, length
    /// `num_partitions + 1`). Read-only view for static analysis.
    pub fn partdispl(&self) -> &[u32] {
        &self.partdispl
    }

    /// Raw per-stage map offsets (`stagedispl`, length `num_stages + 1`).
    /// Read-only view for static analysis.
    pub fn stagedispl(&self) -> &[usize] {
        &self.stagedispl
    }

    /// Raw stage-concatenated buffer map (global column gathered into each
    /// buffer slot). Read-only view for static analysis.
    pub fn stage_map(&self) -> &[u32] {
        &self.map
    }

    /// Raw entry offsets per `(stage, local row)` (length
    /// `num_stages * partsize + 1`). Read-only view for static analysis.
    pub fn entry_displ(&self) -> &[usize] {
        &self.displ
    }

    /// Raw buffer-local column indices. Read-only view for static
    /// analysis.
    pub fn entry_ind(&self) -> &[I] {
        &self.ind
    }

    /// Raw values, grouped to match [`BufferedCsrImpl::entry_ind`].
    /// Read-only view for static analysis.
    pub fn entry_val(&self) -> &[f32] {
        &self.val
    }

    /// Bytes of regular data streamed per SpMV: index + f32 value per
    /// nonzero, plus the u32 map per buffer slot (§3.3.5, §4.2.3).
    /// 6 bytes/nnz with 16-bit addressing, 8 with 32-bit.
    pub fn regular_bytes(&self) -> u64 {
        self.nnz as u64 * (4 + I::BYTES) + self.map.len() as u64 * 4
    }

    /// `y = A·x` with the buffered kernel, sequential.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0f32; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Sequential buffered SpMV into a caller-provided output.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        let mut input = vec![0f32; self.buffsize];
        for p in 0..self.num_partitions() {
            let base = p * self.partsize;
            let rows = self.partsize.min(self.nrows - base);
            self.process_partition(p, x, &mut input, &mut y[base..base + rows]);
        }
    }

    /// `y = A·x` with the buffered kernel, partitions in parallel
    /// (dynamically scheduled, as in Listing 3's `schedule(dynamic)`).
    pub fn spmv_parallel(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0f32; self.nrows];
        self.spmv_parallel_into(x, &mut y);
        y
    }

    /// Parallel buffered SpMV into a caller-provided output (overwritten).
    pub fn spmv_parallel_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        y.par_chunks_mut(self.partsize).enumerate().for_each_init(
            || vec![0f32; self.buffsize],
            |input, (p, out)| {
                self.process_partition(p, x, input, out);
            },
        );
    }

    /// An nnz-balanced [`xct_runtime::ExecPlan`] over this layout's row partitions:
    /// each buffered partition is one plan block (its stage structure
    /// cannot be split), weighted by the data it streams — stored entries
    /// plus staging-map slots — and workers get contiguous partition runs
    /// balanced by the greedy prefix split.
    pub fn exec_plan(&self, workers: usize) -> xct_runtime::ExecPlan {
        let nparts = self.num_partitions();
        let mut bounds = Vec::with_capacity(nparts + 1);
        let mut weights = Vec::with_capacity(nparts);
        bounds.push(0usize);
        for p in 0..nparts {
            bounds.push(((p + 1) * self.partsize).min(self.nrows));
            let s0 = self.partdispl[p] as usize;
            let s1 = self.partdispl[p + 1] as usize;
            let entries = self.displ[s1 * self.partsize] - self.displ[s0 * self.partsize];
            let staged = self.stagedispl[s1] - self.stagedispl[s0];
            weights.push((entries + staged) as u64);
        }
        xct_runtime::ExecPlan::balanced_blocks(&bounds, &weights, workers)
    }

    /// Pooled buffered SpMV into a caller-provided output: each worker
    /// processes the contiguous partition run `plan` assigns it, staging
    /// into its persistent pool scratch (sized to `buffsize` on first
    /// use, then reused — steady-state calls allocate nothing).
    /// Bit-identical to [`BufferedCsrImpl::spmv_into`] for every worker
    /// count.
    pub fn spmv_pooled_into(
        &self,
        x: &[f32],
        y: &mut [f32],
        plan: &xct_runtime::ExecPlan,
        pool: &xct_runtime::WorkerPool,
    ) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        assert_eq!(plan.rows(), self.nrows, "plan rows");
        assert_eq!(plan.num_partitions(), self.num_partitions(), "plan blocks");
        pool.run_with_scratch(plan, y, |parts, rows, out, input| {
            if input.len() < self.buffsize {
                input.resize(self.buffsize, 0.0);
            }
            for p in parts {
                let base = p * self.partsize - rows.start;
                let prows = self.partsize.min(self.nrows - p * self.partsize);
                self.process_partition(p, x, input, &mut out[base..base + prows]);
            }
        });
    }

    /// Sequential buffered SpMM into a caller-provided slice-major output:
    /// `y = A · [x₁ … xₖ]`. The slice loop runs inside each partition, so
    /// the partition's map/index/value arrays are streamed once and
    /// re-read from cache for the remaining k-1 slices; each slice's
    /// per-row accumulation order is exactly the single-slice kernel's,
    /// so column `j` is bit-identical to [`BufferedCsrImpl::spmv_into`]
    /// on slice `j`. The staging buffer stays `buffsize` elements —
    /// batching does not grow the footprint.
    pub fn spmm_into(&self, x: &[f32], y: &mut [f32], batch: usize) {
        assert!(batch > 0, "batch width must be positive");
        assert_eq!(x.len(), self.ncols * batch, "x length");
        assert_eq!(y.len(), self.nrows * batch, "y length");
        let mut input = vec![0f32; self.buffsize];
        for p in 0..self.num_partitions() {
            let base = p * self.partsize;
            let rows = self.partsize.min(self.nrows - base);
            for j in 0..batch {
                let xs = &x[j * self.ncols..(j + 1) * self.ncols];
                let ys = &mut y[j * self.nrows + base..j * self.nrows + base + rows];
                self.process_partition(p, xs, &mut input, ys);
            }
        }
    }

    /// Pooled buffered SpMM into a caller-provided slice-major output:
    /// one dispatch computes all k columns, each worker streaming its
    /// partition run once (slice loop inside each partition) and staging
    /// through its persistent `buffsize` scratch. Column `j` is
    /// bit-identical to [`BufferedCsrImpl::spmv_pooled_into`] (and hence
    /// to [`BufferedCsrImpl::spmv_into`]) on slice `j`.
    pub fn spmm_pooled_into(
        &self,
        x: &[f32],
        y: &mut [f32],
        batch: usize,
        plan: &xct_runtime::ExecPlan,
        pool: &xct_runtime::WorkerPool,
    ) {
        assert!(batch > 0, "batch width must be positive");
        assert_eq!(x.len(), self.ncols * batch, "x length");
        assert_eq!(y.len(), self.nrows * batch, "y length");
        assert_eq!(plan.rows(), self.nrows, "plan rows");
        assert_eq!(plan.num_partitions(), self.num_partitions(), "plan blocks");
        pool.run_batched_with_scratch(plan, y, batch, |parts, rows, mut out, input| {
            if input.len() < self.buffsize {
                input.resize(self.buffsize, 0.0);
            }
            for p in parts {
                let base = p * self.partsize - rows.start;
                let prows = self.partsize.min(self.nrows - p * self.partsize);
                for j in 0..batch {
                    let xs = &x[j * self.ncols..(j + 1) * self.ncols];
                    let block = out.block(j);
                    self.process_partition(p, xs, input, &mut block[base..base + prows]);
                }
            }
        });
    }

    /// Run all stages of partition `p`: gather each stage's footprint into
    /// the buffer, then accumulate the stage's FMAs into `out`.
    #[inline]
    fn process_partition(&self, p: usize, x: &[f32], input: &mut [f32], out: &mut [f32]) {
        out.fill(0.0);
        for stage in self.partdispl[p] as usize..self.partdispl[p + 1] as usize {
            let mlo = self.stagedispl[stage];
            let mhi = self.stagedispl[stage + 1];
            // Staging: the only irregular reads in the kernel. The gather
            // is lane-structured (8 slots per step) so the regular buffer
            // writes vectorize; order is irrelevant here — each slot is a
            // pure write.
            let stage_map = &self.map[mlo..mhi];
            let dst = &mut input[..stage_map.len()];
            let full = stage_map.len() / LANES * LANES;
            for (m8, d8) in stage_map[..full]
                .chunks_exact(LANES)
                .zip(dst[..full].chunks_exact_mut(LANES))
            {
                for l in 0..LANES {
                    d8[l] = x[m8[l] as usize];
                }
            }
            for (d, &g) in dst[full..].iter_mut().zip(&stage_map[full..]) {
                *d = x[g as usize];
            }
            let dbase = stage * self.partsize;
            for (j, acc) in out.iter_mut().enumerate() {
                let d0 = self.displ[dbase + j];
                let d1 = self.displ[dbase + j + 1];
                *acc += row_dot_buf(&self.ind[d0..d1], &self.val[d0..d1], input);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows(
            8,
            &[
                vec![(0, 1.0), (7, 2.0), (3, -1.0)],
                vec![(1, -1.0), (2, 0.25)],
                vec![],
                vec![(0, 0.5), (1, 0.5), (2, 0.5), (3, 0.5), (4, 0.5)],
                vec![(5, 3.0), (6, -2.0)],
                vec![(7, 1.0)],
            ],
        )
    }

    fn x8() -> Vec<f32> {
        (1..=8).map(|i| i as f32).collect()
    }

    #[test]
    fn matches_plain_spmv_for_various_sizes() {
        let a = sample();
        let want = spmv(&a, &x8());
        for partsize in [1, 2, 3, 4, 16] {
            for buffsize in [1, 2, 3, 8, 64] {
                let b = BufferedCsr::from_csr(&a, partsize, buffsize);
                let got = b.spmv(&x8());
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g - w).abs() < 1e-5,
                        "part {partsize} buff {buffsize}: {got:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = sample();
        let b = BufferedCsr::from_csr(&a, 2, 4);
        assert_eq!(b.spmv(&x8()), b.spmv_parallel(&x8()));
    }

    #[test]
    fn pooled_matches_sequential_for_every_worker_count() {
        let a = sample();
        for partsize in [1, 2, 3] {
            let b = BufferedCsr::from_csr(&a, partsize, 4);
            let want = b.spmv(&x8());
            for workers in [1, 2, 3, 8] {
                let pool = xct_runtime::WorkerPool::new(workers);
                let plan = b.exec_plan(workers);
                assert!(plan.is_well_formed());
                let mut y = vec![0f32; b.nrows()];
                // Twice on the same pool: scratch buffers are reused.
                for _ in 0..2 {
                    b.spmv_pooled_into(&x8(), &mut y, &plan, &pool);
                    assert_eq!(y, want, "partsize {partsize} workers {workers}");
                }
            }
        }
    }

    #[test]
    fn stage_counts_reflect_buffer_size() {
        let a = sample();
        // Partition 0 (rows 0-1) touches columns {0,1,2,3,7} = 5 distinct.
        let tight = BufferedCsr::from_csr(&a, 2, 2);
        assert_eq!(tight.stages_of_partition(0), 3); // ceil(5/2)
        let loose = BufferedCsr::from_csr(&a, 2, 8);
        assert_eq!(loose.stages_of_partition(0), 1);
    }

    #[test]
    fn map_holds_each_partition_footprint_once() {
        let a = sample();
        let b = BufferedCsr::from_csr(&a, 6, 64); // one partition
        assert_eq!(b.num_partitions(), 1);
        assert_eq!(b.map_len(), 8); // columns 0..=7 all touched
        assert_eq!(b.num_stages(), 1);
    }

    #[test]
    fn regular_bytes_smaller_than_csr() {
        // The 16-bit addressing must beat 8 bytes/nnz once footprints are
        // reused (map overhead amortized).
        let a = sample();
        let b = BufferedCsr::from_csr(&a, 6, 64);
        assert!(b.regular_bytes() < a.regular_bytes() + b.map_len() as u64 * 4 + 1);
        assert_eq!(b.regular_bytes(), a.nnz() as u64 * 6 + 8 * 4);
    }

    #[test]
    fn empty_matrix_works() {
        let a = CsrMatrix::zeros(0, 4);
        let b = BufferedCsr::from_csr(&a, 4, 4);
        assert_eq!(b.spmv(&[1.0; 4]), Vec::<f32>::new());
    }

    #[test]
    fn all_empty_rows_work() {
        let a = CsrMatrix::zeros(5, 3);
        let b = BufferedCsr::from_csr(&a, 2, 2);
        assert_eq!(b.spmv(&[1.0; 3]), vec![0.0; 5]);
        assert_eq!(b.num_stages(), 0);
    }

    #[test]
    #[should_panic(expected = "16-bit")]
    fn oversized_buffer_rejected() {
        BufferedCsr::from_csr(&sample(), 2, 1 << 17);
    }

    #[test]
    fn partial_last_partition() {
        let a = sample(); // 6 rows
        let b = BufferedCsr::from_csr(&a, 4, 8); // partitions of 4, last has 2
        assert_eq!(b.num_partitions(), 2);
        let want = spmv(&a, &x8());
        let got = b.spmv(&x8());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }
}

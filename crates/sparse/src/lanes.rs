//! Fixed-width lane-split row reductions — the SIMD building block shared
//! by every SpMV/SpMM kernel in this crate.
//!
//! The paper's inner loop (Listing 2) is a scalar chain of fused
//! multiply-adds with a loop-carried dependence on the accumulator, so a
//! compiler cannot vectorize it without changing the floating-point
//! reduction order. Instead of asking LLVM to reassociate (which would
//! make results depend on optimization decisions), every kernel here
//! commits to one explicit, deterministic order:
//!
//! - entries of a row are processed in groups of [`LANES`] (= 8) via
//!   `chunks_exact`, one independent f32 accumulator per lane — the
//!   dependence chains are independent, so rustc/LLVM reliably emits
//!   packed SIMD under `#![forbid(unsafe_code)]` (no intrinsics);
//! - the 8 lane accumulators are combined by a fixed tree:
//!   `((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))`;
//! - the `len % 8` tail entries are added sequentially onto that sum.
//!
//! The order is a function of the row's entry sequence only — never of
//! thread count, partition plan, or batch width — so pooled, parallel,
//! batched, and serial kernels built on these helpers are bit-identical
//! to one another by construction.

/// Lane width of the vectorized kernels: 8 × f32 = one 256-bit register.
///
/// 8 was chosen by measurement: 16 lanes spill on AVX2-class cores and
/// measured slower; 8 is also wide enough that AVX-512 hardware can fuse
/// pairs of iterations.
pub const LANES: usize = 8;

/// Lane-split dot product of a CSR row with the gathered input:
/// `Σ x[cols[k]] * vals[k]` in the deterministic lane order.
///
/// The gather (`x[c]`) and the multiply-add are split into two passes over
/// a stack buffer so the bounds-checked gathers don't serialize the FMA
/// chain — measured ~1.3× the scalar loop on ADS1-shaped rows.
#[inline]
pub fn row_dot(cols: &[u32], vals: &[f32], x: &[f32]) -> f32 {
    let mut acc = [0f32; LANES];
    let mut gat = [0f32; LANES];
    let ci = cols.chunks_exact(LANES);
    let vi = vals.chunks_exact(LANES);
    let (ct, vt) = (ci.remainder(), vi.remainder());
    for (c8, v8) in ci.zip(vi) {
        for l in 0..LANES {
            gat[l] = x[c8[l] as usize];
        }
        for l in 0..LANES {
            acc[l] += gat[l] * v8[l];
        }
    }
    let mut s = reduce_lanes(&acc);
    for (c, v) in ct.iter().zip(vt) {
        s += x[*c as usize] * v;
    }
    s
}

/// Lane-split dot product with `u16` in-buffer indices (the Listing 3
/// accumulation stage): `Σ buf[ind[k]] * vals[k]` in the same
/// deterministic lane order as [`row_dot`].
#[inline]
pub fn row_dot_u16(ind: &[u16], vals: &[f32], buf: &[f32]) -> f32 {
    let mut acc = [0f32; LANES];
    let mut gat = [0f32; LANES];
    let ci = ind.chunks_exact(LANES);
    let vi = vals.chunks_exact(LANES);
    let (ct, vt) = (ci.remainder(), vi.remainder());
    for (c8, v8) in ci.zip(vi) {
        for l in 0..LANES {
            gat[l] = buf[c8[l] as usize];
        }
        for l in 0..LANES {
            acc[l] += gat[l] * v8[l];
        }
    }
    let mut s = reduce_lanes(&acc);
    for (c, v) in ct.iter().zip(vt) {
        s += buf[*c as usize] * v;
    }
    s
}

/// The fixed lane-combination tree. Exposed so reference implementations
/// (tests, benches) can reproduce the exact order without duplicating it.
#[inline]
pub fn reduce_lanes(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Plainly-written scalar model of [`row_dot`]'s exact order, kept free of
/// any vectorization-motivated structure. Tests pin the vectorized kernels
/// against this; it is the executable spec of the reduction contract.
pub fn row_dot_ref(cols: &[u32], vals: &[f32], x: &[f32]) -> f32 {
    let full = cols.len() / LANES * LANES;
    let mut acc = [0f32; LANES];
    for k in 0..full {
        acc[k % LANES] += x[cols[k] as usize] * vals[k];
    }
    let mut s = reduce_lanes(&acc);
    for k in full..cols.len() {
        s += x[cols[k] as usize] * vals[k];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: usize) -> (Vec<u32>, Vec<f32>, Vec<f32>) {
        // Deliberately rounding-sensitive values: different summation
        // orders give different f32 bits, so these tests would catch an
        // order drift between the kernel and its reference.
        let cols: Vec<u32> = (0..n).map(|k| ((k * 7 + 3) % 64) as u32).collect();
        let vals: Vec<f32> = (0..n).map(|k| ((k * 37 % 101) as f32).sin()).collect();
        let x: Vec<f32> = (0..64).map(|i| ((i * 13 % 29) as f32).cos()).collect();
        (cols, vals, x)
    }

    #[test]
    fn row_dot_matches_reference_bitwise() {
        for n in [0, 1, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100, 257] {
            let (cols, vals, x) = row(n);
            let a = row_dot(&cols, &vals, &x);
            let b = row_dot_ref(&cols, &vals, &x);
            assert_eq!(a.to_bits(), b.to_bits(), "len {n}: {a} vs {b}");
        }
    }

    #[test]
    fn row_dot_u16_matches_reference_bitwise() {
        for n in [0, 3, 8, 23, 64, 129] {
            let (cols, vals, x) = row(n);
            let ind: Vec<u16> = cols.iter().map(|&c| c as u16).collect();
            let a = row_dot_u16(&ind, &vals, &x);
            let b = row_dot_ref(&cols, &vals, &x);
            assert_eq!(a.to_bits(), b.to_bits(), "len {n}");
        }
    }

    #[test]
    fn differs_from_sequential_order_on_rounding_sensitive_rows() {
        // Sanity: the lane order is genuinely different from the scalar
        // Listing 2 chain (otherwise the bit-identity tests above would be
        // vacuous).
        let (cols, vals, x) = row(257);
        let seq: f32 = cols
            .iter()
            .zip(&vals)
            .fold(0f32, |a, (&c, &v)| a + x[c as usize] * v);
        let lane = row_dot(&cols, &vals, &x);
        assert!((seq - lane).abs() < 1e-4, "same sum to tolerance");
        assert_ne!(seq.to_bits(), lane.to_bits(), "expected a different order");
    }
}

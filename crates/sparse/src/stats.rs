//! Footprint / reuse / staging statistics (paper Fig 6 and the bandwidth
//! accounting of §4.2).

use crate::csr::CsrMatrix;

/// Statistics of one row partition's irregular input footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStats {
    /// First row of the partition.
    pub row_base: usize,
    /// Rows in the partition.
    pub rows: usize,
    /// Nonzeroes (= FMAs = irregular accesses before buffering).
    pub nnz: usize,
    /// Distinct input entries touched (the buffer footprint).
    pub footprint: usize,
    /// Stages needed for a given buffer size: `ceil(footprint / buffsize)`.
    pub stages: usize,
}

impl PartitionStats {
    /// Average data reuse: irregular accesses per distinct input entry
    /// (the "Average Data Reuse" annotation of Fig 6(a)).
    pub fn reuse(&self) -> f64 {
        if self.footprint == 0 {
            0.0
        } else {
            self.nnz as f64 / self.footprint as f64
        }
    }
}

/// Per-partition footprint statistics for partitions of `partsize` rows,
/// with stage counts for buffer capacity `buffsize`.
pub fn partition_stats(a: &CsrMatrix, partsize: usize, buffsize: usize) -> Vec<PartitionStats> {
    assert!(partsize > 0 && buffsize > 0);
    let mut out = Vec::with_capacity(a.nrows().div_ceil(partsize));
    let mut cols: Vec<u32> = Vec::new();
    for base in (0..a.nrows()).step_by(partsize) {
        let rows = partsize.min(a.nrows() - base);
        cols.clear();
        let mut nnz = 0;
        for i in base..base + rows {
            for (c, _) in a.row(i) {
                cols.push(c);
                nnz += 1;
            }
        }
        cols.sort_unstable();
        cols.dedup();
        out.push(PartitionStats {
            row_base: base,
            rows,
            nnz,
            footprint: cols.len(),
            stages: cols.len().div_ceil(buffsize),
        });
    }
    out
}

/// Whole-matrix aggregates used by the Fig 9 bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixStats {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Nonzeroes.
    pub nnz: usize,
    /// Mean nonzeroes per row.
    pub mean_row_nnz: f64,
    /// Max nonzeroes per row.
    pub max_row_nnz: usize,
    /// Sum of per-partition footprints (total buffer-map length).
    pub total_footprint: usize,
    /// Mean per-partition data reuse.
    pub mean_reuse: f64,
}

/// Compute [`MatrixStats`] for partitions of `partsize` rows.
pub fn matrix_stats(a: &CsrMatrix, partsize: usize) -> MatrixStats {
    let parts = partition_stats(a, partsize, 1 << 30);
    let total_footprint: usize = parts.iter().map(|p| p.footprint).sum();
    let mean_reuse = if parts.is_empty() {
        0.0
    } else {
        parts.iter().map(|p| p.reuse()).sum::<f64>() / parts.len() as f64
    };
    let max_row_nnz = (0..a.nrows())
        .map(|i| a.rowptr()[i + 1] - a.rowptr()[i])
        .max()
        .unwrap_or(0);
    MatrixStats {
        nrows: a.nrows(),
        ncols: a.ncols(),
        nnz: a.nnz(),
        mean_row_nnz: if a.nrows() == 0 {
            0.0
        } else {
            a.nnz() as f64 / a.nrows() as f64
        },
        max_row_nnz,
        total_footprint,
        mean_reuse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (1, 2.0)],
                vec![(0, 3.0), (1, 4.0)],
                vec![(2, 5.0)],
                vec![(2, 6.0), (3, 7.0)],
            ],
        )
    }

    #[test]
    fn footprint_and_reuse() {
        let stats = partition_stats(&sample(), 2, 64);
        assert_eq!(stats.len(), 2);
        // Partition 0: 4 nnz over columns {0,1} => reuse 2.0.
        assert_eq!(stats[0].nnz, 4);
        assert_eq!(stats[0].footprint, 2);
        assert_eq!(stats[0].reuse(), 2.0);
        // Partition 1: 3 nnz over {2,3} => reuse 1.5.
        assert_eq!(stats[1].reuse(), 1.5);
    }

    #[test]
    fn stages_depend_on_buffsize() {
        let stats = partition_stats(&sample(), 4, 1);
        assert_eq!(stats[0].footprint, 4);
        assert_eq!(stats[0].stages, 4);
        let stats = partition_stats(&sample(), 4, 3);
        assert_eq!(stats[0].stages, 2);
    }

    #[test]
    fn matrix_stats_aggregates() {
        let s = matrix_stats(&sample(), 2);
        assert_eq!(s.nnz, 7);
        assert_eq!(s.max_row_nnz, 2);
        assert_eq!(s.total_footprint, 4);
        assert!((s.mean_reuse - 1.75).abs() < 1e-12);
        assert!((s.mean_row_nnz - 1.75).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_stats() {
        let s = matrix_stats(&CsrMatrix::zeros(0, 5), 4);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.mean_reuse, 0.0);
    }
}

//! Compressed sparse row matrices with the paper's data layout
//! (f32 values, u32 column indices) and the order-preserving scan-based
//! transpose of §3.5.1.

/// A sparse matrix in CSR format.
///
/// Row `i`'s nonzeroes live at `rowptr[i]..rowptr[i+1]` in `colind` /
/// `values`. Within a row, entries keep their insertion order — MemXCT
/// inserts them in ray-traversal order, and all further transformations
/// (including the transpose) preserve ordering, which the buffering
/// optimizations rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, non-monotone
    /// row pointers, or column indices out of range).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(rowptr.len(), nrows + 1, "rowptr length");
        assert_eq!(rowptr[0], 0, "rowptr must start at 0");
        assert_eq!(*rowptr.last().unwrap(), colind.len(), "rowptr end");
        assert_eq!(colind.len(), values.len(), "colind/values length");
        assert!(rowptr.windows(2).all(|w| w[0] <= w[1]), "rowptr monotone");
        assert!(
            colind.iter().all(|&c| (c as usize) < ncols),
            "column index out of range"
        );
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// Build row-by-row: `rows[i]` is the (column, value) list of row `i`,
    /// kept in the given order.
    ///
    /// ```
    /// use xct_sparse::{CsrMatrix, spmv};
    /// let a = CsrMatrix::from_rows(3, &[
    ///     vec![(0, 1.0), (2, 2.0)],
    ///     vec![(1, -1.0)],
    /// ]);
    /// assert_eq!(spmv(&a, &[1.0, 2.0, 3.0]), vec![7.0, -2.0]);
    /// assert_eq!(a.transpose_scan().transpose_scan(), a);
    /// ```
    pub fn from_rows(ncols: usize, rows: &[Vec<(u32, f32)>]) -> Self {
        let nrows = rows.len();
        let nnz: usize = rows.iter().map(|r| r.len()).sum();
        let mut rowptr = Vec::with_capacity(nrows + 1);
        let mut colind = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        rowptr.push(0);
        for row in rows {
            for &(c, v) in row {
                assert!((c as usize) < ncols, "column {c} out of range");
                colind.push(c);
                values.push(v);
            }
            rowptr.push(colind.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// Build from raw CSR arrays with **no validation**. This exists so
    /// static-analysis tooling (`xct-check`) can be exercised against
    /// deliberately malformed matrices; production code should use
    /// [`CsrMatrix::from_raw`], which asserts well-formedness.
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// An empty matrix with the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colind: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeroes.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column indices, row-concatenated.
    #[inline]
    pub fn colind(&self) -> &[u32] {
        &self.colind
    }

    /// Values, row-concatenated.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The `(column, value)` entries of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.rowptr[i];
        let hi = self.rowptr[i + 1];
        self.colind[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Bytes of "regular data" this matrix streams per SpMV: one u32 index
    /// and one f32 value per nonzero (paper §3.1.1).
    pub fn regular_bytes(&self) -> u64 {
        self.nnz() as u64 * 8
    }

    /// Order-preserving scan-based sparse transpose (§3.5.1).
    ///
    /// A counting sort by column: count nonzeroes per column, exclusive
    /// prefix-scan into output offsets, then a stable sweep in row order.
    /// Stability means each transposed row (= original column) lists its
    /// entries in increasing original-row order, preserving the Hilbert
    /// data locality — unlike an atomic-based transpose, which randomizes
    /// intra-row order.
    pub fn transpose_scan(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.colind {
            counts[c as usize + 1] += 1;
        }
        // Exclusive prefix scan.
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let rowptr_t = counts.clone();
        let mut colind_t = vec![0u32; self.nnz()];
        let mut values_t = vec![0f32; self.nnz()];
        let mut cursor = counts; // running insert position per column
        for i in 0..self.nrows {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                let c = self.colind[k] as usize;
                let dst = cursor[c];
                cursor[c] += 1;
                // in-range: i < nrows and CSR column indices are u32 by layout
                colind_t[dst] = i as u32;
                values_t[dst] = self.values[k];
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr: rowptr_t,
            colind: colind_t,
            values: values_t,
        }
    }

    /// Extract the row range `lo..hi` as a standalone matrix (used for
    /// distributing row blocks across processes).
    pub fn slice_rows(&self, lo: usize, hi: usize) -> CsrMatrix {
        assert!(lo <= hi && hi <= self.nrows);
        let base = self.rowptr[lo];
        let rowptr = self.rowptr[lo..=hi].iter().map(|&p| p - base).collect();
        CsrMatrix {
            nrows: hi - lo,
            ncols: self.ncols,
            rowptr,
            colind: self.colind[base..self.rowptr[hi]].to_vec(),
            values: self.values[base..self.rowptr[hi]].to_vec(),
        }
    }

    /// Dense representation (tests/debugging only).
    pub fn to_dense(&self) -> Vec<Vec<f32>> {
        let mut d = vec![vec![0f32; self.ncols]; self.nrows];
        for (i, di) in d.iter_mut().enumerate() {
            for (c, v) in self.row(i) {
                di[c as usize] += v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        // [ 0 5 6 ]
        CsrMatrix::from_rows(
            3,
            &[
                vec![(0, 1.0), (2, 2.0)],
                vec![],
                vec![(0, 3.0), (1, 4.0)],
                vec![(1, 5.0), (2, 6.0)],
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 3.0), (1, 4.0)]);
        assert_eq!(m.row(1).count(), 0);
    }

    #[test]
    fn transpose_is_correct() {
        let m = sample();
        let t = m.transpose_scan();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 4);
        assert_eq!(t.nnz(), 6);
        let dense = m.to_dense();
        let dense_t = t.to_dense();
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(dense[i][j], dense_t[j][i]);
            }
        }
    }

    #[test]
    fn transpose_preserves_row_order_within_transposed_rows() {
        let m = sample();
        let t = m.transpose_scan();
        // Column 0 of m had entries from rows 0 then 2: stable order.
        assert_eq!(t.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 3.0)]);
        assert_eq!(t.row(1).collect::<Vec<_>>(), vec![(2, 4.0), (3, 5.0)]);
        assert_eq!(t.row(2).collect::<Vec<_>>(), vec![(0, 2.0), (3, 6.0)]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = sample();
        let tt = m.transpose_scan().transpose_scan();
        assert_eq!(m, tt);
    }

    #[test]
    fn slice_rows_extracts_block() {
        let m = sample();
        let s = m.slice_rows(2, 4);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.row(0).collect::<Vec<_>>(), vec![(0, 3.0), (1, 4.0)]);
        assert_eq!(s.row(1).collect::<Vec<_>>(), vec![(1, 5.0), (2, 6.0)]);
    }

    #[test]
    fn regular_bytes_is_8_per_nnz() {
        assert_eq!(sample().regular_bytes(), 48);
    }

    #[test]
    #[should_panic(expected = "column")]
    fn out_of_range_column_panics() {
        CsrMatrix::from_rows(2, &[vec![(2, 1.0)]]);
    }

    #[test]
    fn zeros_is_empty() {
        let z = CsrMatrix::zeros(5, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.nrows(), 5);
        assert_eq!(z.ncols(), 7);
    }
}

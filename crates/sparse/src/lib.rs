//! Sparse kernels for MemXCT (SC '19, §3.1 and §3.3).
//!
//! MemXCT performs forward and backprojection as explicit SpMV over a
//! memoized projection matrix. This crate provides:
//!
//! - [`CsrMatrix`]: compressed sparse row storage (f32 values, u32 column
//!   indices — the paper's layout);
//! - [`CsrMatrix::transpose_scan`]: the order-preserving scan-based sparse
//!   transposition of §3.5.1 (no atomics, locality preserved);
//! - [`spmv`] / [`spmv_parallel`]: the baseline kernel of Listing 2 with
//!   OpenMP-style dynamically-scheduled row partitions;
//! - [`EllMatrix`]: column-major ELL with *partition-level* zero padding,
//!   the GPU (coalesced-access) kernel analog of §3.1.4;
//! - [`BufferedCsr`]: the multi-stage input-buffered kernel of Listing 3,
//!   with 16-bit in-buffer addressing (§3.3.5);
//! - [`spmv_pooled_into`] / [`dot_f64_pooled`] (plus pooled methods on
//!   the buffered/ELL layouts): the same kernels driven by the
//!   persistent `xct-runtime` worker pool over static nnz-balanced
//!   partitions — no per-call thread spawns, bit-identical results for
//!   every worker count;
//! - [`SliceBatch`] / [`spmm_into`] / [`spmm_pooled_into`] (plus SpMM
//!   methods on the buffered/ELL layouts): batched right-hand sides,
//!   `Y = A · [x₁ … xₖ]`, streaming the matrix once per k slices with
//!   per-slice results bit-identical to the SpMV kernels;
//! - [`PartitionStats`]: footprint / data-reuse / staging statistics used
//!   by Fig 6 and the bandwidth accounting of Fig 9;
//! - [`lanes`]: the fixed-width lane-split row reduction every kernel
//!   above shares — explicit 8-lane f32 accumulators with a deterministic
//!   reduction order, written so rustc/LLVM emits SIMD without intrinsics
//!   (the scalar Listing 2 chain survives as [`spmv_scalar_into`], the
//!   roofline baseline);
//! - [`TiledCsr`]: cache-blocked execution — each row block's entries
//!   regrouped by Hilbert column tile so the irregular x-gather stays in a
//!   small window (modeled by `xct-cachesim::spmv_tiled_trace`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod buffered;
mod csr;
mod ell;
mod kernel;
pub mod lanes;
mod pooled;
mod reduce;
mod spmv;
mod stats;
mod tiled;

pub use batch::{
    dot_batch_plan, dot_f64_batched_pooled, spmm, spmm_into, spmm_pooled_into, SliceBatch,
    SPMM_ROW_TILE,
};
pub use buffered::{BufferIndex, BufferedCsr, BufferedCsr32, BufferedCsrImpl, LayoutError};
pub use csr::CsrMatrix;
pub use ell::{EllMatrix, EllPartitionView};
pub use kernel::{ParCsr, SpmvKernel};
pub use pooled::{
    csr_plan, csr_plan_equal, dot_chunks, dot_f64_pooled, dot_plan, spmv_pooled_into, DOT_CHUNK,
};
pub use reduce::{dot_f64, norm_f64};
pub use spmv::{spmv, spmv_into, spmv_parallel, spmv_parallel_into, spmv_scalar_into};
pub use stats::{matrix_stats, partition_stats, MatrixStats, PartitionStats};
pub use tiled::{TiledCsr, TILE_COL_WIDTH, TILE_ROW_BLOCK};

//! Batched right-hand sides: slice-major vector blocks and SpMM kernels.
//!
//! Reconstructing k adjacent slices through the *same* memoized matrix
//! turns SpMV into SpMM, `Y = A · [x₁ … xₖ]` — the matrix is streamed
//! from DRAM once per k slices instead of once per slice, which is the
//! arithmetic-intensity lever of the "Petascale XCT" follow-up work.
//!
//! Layout is **slice-major**: slice `j` of an `n`-element domain occupies
//! `data[j * n .. (j + 1) * n]`. Every SpMM kernel in this crate runs its
//! slice loop *inside* a cache-resident matrix tile (a fixed row tile for
//! CSR, one partition for the buffered and ELL layouts), so the tile's
//! matrix data is read from cache for slices 2..k while each slice's
//! per-row accumulation order is exactly the single-slice kernel's order.
//! Column `j` of the batched product is therefore **bit-identical** to
//! `A · xⱼ` for every batch width — k = 1 is the existing SpMV, not a
//! parallel code path.

use crate::csr::CsrMatrix;
use crate::lanes::row_dot;
use crate::pooled::{dot_chunks, DOT_CHUNK};
use crate::reduce::dot_f64;
use xct_runtime::{ExecPlan, WorkerPool};

/// Row-tile width of the CSR SpMM kernels: the slice loop runs inside
/// each tile so the tile's `rowptr`/`colind`/`values` stay cache-resident
/// across all k slices. Tiling never changes results (each row's
/// accumulation is independent), only the matrix re-read distance.
pub const SPMM_ROW_TILE: usize = 256;

/// A slice-major batched vector: `batch` contiguous blocks of `len`
/// elements each, slice `j` at `data[j * len .. (j + 1) * len]`. This is
/// the right-hand-side (and output) shape of every SpMM kernel and of the
/// batched solver engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceBatch {
    len: usize,
    batch: usize,
    data: Vec<f32>,
}

impl SliceBatch {
    /// An all-zero batch of `batch` slices of `len` elements.
    ///
    /// # Panics
    /// If `batch` is zero.
    pub fn new(len: usize, batch: usize) -> Self {
        assert!(batch > 0, "batch width must be positive");
        SliceBatch {
            len,
            batch,
            data: vec![0f32; len * batch],
        }
    }

    /// Pack independent slices into one slice-major block.
    ///
    /// # Panics
    /// If `slices` is empty or the slices disagree in length.
    pub fn from_slices(slices: &[&[f32]]) -> Self {
        assert!(!slices.is_empty(), "batch width must be positive");
        let len = slices[0].len();
        let mut data = Vec::with_capacity(len * slices.len());
        for s in slices {
            assert_eq!(s.len(), len, "slice lengths must agree");
            data.extend_from_slice(s);
        }
        SliceBatch {
            len,
            batch: slices.len(),
            data,
        }
    }

    /// Elements per slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when slices are empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slices (the batch width k).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Slice `j` as a contiguous block.
    pub fn slice(&self, j: usize) -> &[f32] {
        &self.data[j * self.len..(j + 1) * self.len]
    }

    /// Mutable slice `j`.
    pub fn slice_mut(&mut self, j: usize) -> &mut [f32] {
        &mut self.data[j * self.len..(j + 1) * self.len]
    }

    /// The whole slice-major block (`len × batch` elements).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole slice-major block, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Sequential CSR SpMM: `y = A · [x₁ … xₖ]`, both sides slice-major.
/// Column `j` is bit-identical to [`crate::spmv_into`] on slice `j`.
pub fn spmm_into(a: &CsrMatrix, x: &[f32], y: &mut [f32], batch: usize) {
    assert!(batch > 0, "batch width must be positive");
    assert_eq!(x.len(), a.ncols() * batch, "x length");
    assert_eq!(y.len(), a.nrows() * batch, "y length");
    let rowptr = a.rowptr();
    let colind = a.colind();
    let values = a.values();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    for tile in (0..nrows).step_by(SPMM_ROW_TILE) {
        let hi = (tile + SPMM_ROW_TILE).min(nrows);
        // Slice loop inside the tile: the tile's matrix data is streamed
        // once and re-read from cache for the remaining k-1 slices.
        for j in 0..batch {
            let xs = &x[j * ncols..(j + 1) * ncols];
            let ys = &mut y[j * nrows + tile..j * nrows + hi];
            for (jj, out) in ys.iter_mut().enumerate() {
                let i = tile + jj;
                let (lo, hi) = (rowptr[i], rowptr[i + 1]);
                *out = row_dot(&colind[lo..hi], &values[lo..hi], xs);
            }
        }
    }
}

/// Allocating [`spmm_into`].
pub fn spmm(a: &CsrMatrix, x: &[f32], batch: usize) -> Vec<f32> {
    let mut y = vec![0f32; a.nrows() * batch];
    spmm_into(a, x, &mut y, batch);
    y
}

/// Pooled CSR SpMM into a caller-provided slice-major output: one
/// dispatch computes all k columns, each worker streaming its
/// plan-assigned row run once while filling its row range of every
/// output block. Column `j` is bit-identical to
/// [`crate::spmv_pooled_into`] (and hence to [`crate::spmv_into`]) on
/// slice `j`, for every worker count and batch width.
pub fn spmm_pooled_into(
    a: &CsrMatrix,
    x: &[f32],
    y: &mut [f32],
    batch: usize,
    plan: &ExecPlan,
    pool: &WorkerPool,
) {
    assert!(batch > 0, "batch width must be positive");
    assert_eq!(x.len(), a.ncols() * batch, "x length");
    assert_eq!(y.len(), a.nrows() * batch, "y length");
    assert_eq!(plan.rows(), a.nrows(), "plan rows");
    let rowptr = a.rowptr();
    let colind = a.colind();
    let values = a.values();
    let ncols = a.ncols();
    pool.run_batched(plan, y, batch, |_parts, rows, mut out| {
        for tile in (rows.start..rows.end).step_by(SPMM_ROW_TILE) {
            let hi = (tile + SPMM_ROW_TILE).min(rows.end);
            for j in 0..batch {
                let xs = &x[j * ncols..(j + 1) * ncols];
                let block = out.block(j);
                for i in tile..hi {
                    let (lo, khi) = (rowptr[i], rowptr[i + 1]);
                    block[i - rows.start] = row_dot(&colind[lo..khi], &values[lo..khi], xs);
                }
            }
        }
    });
}

/// A plan distributing the reduction chunks of `batch` independent
/// `len`-element dot products over `workers` workers: global chunk `g`
/// is chunk `g % chunks` of slice `g / chunks`.
pub fn dot_batch_plan(len: usize, batch: usize, workers: usize) -> ExecPlan {
    ExecPlan::equal_rows(dot_chunks(len) * batch, workers)
}

/// Batched deterministic pooled dot: one dispatch fills the per-chunk
/// `f64` partials of all `batch` slice pairs (slice-major, `chunks`
/// slots per slice), then each slice's partials are summed in chunk
/// order into `out[j]`. Every `out[j]` is bit-identical to
/// [`crate::dot_f64_pooled`] over slice `j`, for every worker count.
///
/// `partials` is caller-owned scratch of `dot_chunks(len) * batch`
/// slots, `out` of `batch` slots, so steady-state calls allocate
/// nothing.
#[allow(clippy::too_many_arguments)]
pub fn dot_f64_batched_pooled(
    pool: &WorkerPool,
    plan: &ExecPlan,
    a: &[f32],
    b: &[f32],
    batch: usize,
    partials: &mut [f64],
    out: &mut [f64],
) {
    assert!(batch > 0, "batch width must be positive");
    assert_eq!(a.len(), b.len(), "vector lengths");
    assert_eq!(a.len() % batch, 0, "length must be a multiple of batch");
    let len = a.len() / batch;
    let chunks = dot_chunks(len);
    assert_eq!(partials.len(), chunks * batch, "partials length");
    assert_eq!(out.len(), batch, "out length");
    pool.run(plan, partials, |_parts, slots, dst| {
        for (i, slot) in dst.iter_mut().enumerate() {
            let g = slots.start + i;
            let (j, c) = (g / chunks, g % chunks);
            let lo = j * len + c * DOT_CHUNK;
            let hi = j * len + ((c + 1) * DOT_CHUNK).min(len);
            *slot = dot_f64(&a[lo..hi], &b[lo..hi]);
        }
    });
    for (j, o) in out.iter_mut().enumerate() {
        *o = partials[j * chunks..(j + 1) * chunks].iter().sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooled::{csr_plan, dot_f64_pooled, dot_plan, spmv_pooled_into};
    use crate::spmv::spmv_into;

    fn skewed() -> CsrMatrix {
        let mut rows: Vec<Vec<(u32, f32)>> = vec![
            (0..48).map(|c| (c as u32, 0.25 + c as f32)).collect(),
            vec![(1, -1.0)],
            vec![],
            vec![(3, 2.0), (7, 1.5)],
            vec![(0, 1.0), (47, -0.5)],
        ];
        // Enough rows to cross a SPMM_ROW_TILE boundary.
        for i in 0..(SPMM_ROW_TILE + 9) {
            rows.push(vec![((i % 48) as u32, (i as f32 * 0.3).cos())]);
        }
        CsrMatrix::from_rows(48, &rows)
    }

    fn rhs(ncols: usize, batch: usize) -> Vec<f32> {
        (0..ncols * batch)
            .map(|i| ((i * 37 + 11) % 101) as f32 * 0.013 - 0.5)
            .collect()
    }

    #[test]
    fn slice_batch_blocks_are_slice_major() {
        let mut sb = SliceBatch::new(3, 2);
        sb.slice_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(sb.as_slice(), &[0.0, 0.0, 0.0, 1.0, 2.0, 3.0]);
        assert_eq!(sb.slice(0), &[0.0; 3]);
        assert_eq!(sb.len(), 3);
        assert_eq!(sb.batch(), 2);
        let packed = SliceBatch::from_slices(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(packed.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn serial_spmm_columns_match_spmv_bitwise() {
        let a = skewed();
        for batch in [1, 2, 4, 7] {
            let x = rhs(a.ncols(), batch);
            let y = spmm(&a, &x, batch);
            for j in 0..batch {
                let mut want = vec![0f32; a.nrows()];
                spmv_into(&a, &x[j * a.ncols()..(j + 1) * a.ncols()], &mut want);
                let got = &y[j * a.nrows()..(j + 1) * a.nrows()];
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "batch {batch} slice {j}");
                }
            }
        }
    }

    #[test]
    fn pooled_spmm_columns_match_pooled_spmv_bitwise() {
        let a = skewed();
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            let plan = csr_plan(&a, workers);
            for batch in [1, 3, 5] {
                let x = rhs(a.ncols(), batch);
                let mut y = vec![0f32; a.nrows() * batch];
                spmm_pooled_into(&a, &x, &mut y, batch, &plan, &pool);
                for j in 0..batch {
                    let mut want = vec![0f32; a.nrows()];
                    spmv_pooled_into(
                        &a,
                        &x[j * a.ncols()..(j + 1) * a.ncols()],
                        &mut want,
                        &plan,
                        &pool,
                    );
                    let got = &y[j * a.nrows()..(j + 1) * a.nrows()];
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "workers {workers} batch {batch} slice {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_dot_matches_single_slice_pooled_dot_bitwise() {
        let len = 2 * DOT_CHUNK + 33;
        let batch = 3;
        let a: Vec<f32> = (0..len * batch)
            .map(|i| ((i * 29) % 83) as f32 * 0.017)
            .collect();
        let b: Vec<f32> = (0..len * batch)
            .map(|i| ((i * 41) % 89) as f32 * 0.011 - 0.4)
            .collect();
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            let plan = dot_batch_plan(len, batch, workers);
            let mut partials = vec![0f64; dot_chunks(len) * batch];
            let mut out = vec![0f64; batch];
            dot_f64_batched_pooled(&pool, &plan, &a, &b, batch, &mut partials, &mut out);
            let single_plan = dot_plan(len, workers);
            let mut single_partials = vec![0f64; dot_chunks(len)];
            for j in 0..batch {
                let want = dot_f64_pooled(
                    &pool,
                    &single_plan,
                    &a[j * len..(j + 1) * len],
                    &b[j * len..(j + 1) * len],
                    &mut single_partials,
                );
                assert_eq!(
                    out[j].to_bits(),
                    want.to_bits(),
                    "workers {workers} slice {j}"
                );
            }
        }
    }

    #[test]
    fn empty_domain_dot_is_zero() {
        let pool = WorkerPool::new(2);
        let plan = dot_batch_plan(0, 2, 2);
        let mut out = vec![1f64; 2];
        dot_f64_batched_pooled(&pool, &plan, &[], &[], 2, &mut [], &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }
}

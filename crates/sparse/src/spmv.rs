//! The baseline MemXCT kernel (Listing 2): CSR SpMV with row partitions
//! dynamically scheduled across threads.
//!
//! Each fused multiply-add reads two *regular* streams (`ind`, `val`) and
//! one *irregular* value (`x[ind]`); the irregular access is the memory
//! bottleneck the ordering and buffering optimizations attack.

use crate::csr::CsrMatrix;
use crate::lanes::row_dot;
use rayon::prelude::*;

/// Sequential CSR SpMV: `y = A·x`.
pub fn spmv(a: &CsrMatrix, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0f32; a.nrows()];
    spmv_into(a, x, &mut y);
    y
}

/// Sequential CSR SpMV into a caller-provided output.
///
/// Rows are reduced in the deterministic lane order of [`crate::lanes`];
/// every other CSR kernel (parallel, pooled, batched) uses the same order,
/// so they are all bitwise equal to this one.
pub fn spmv_into(a: &CsrMatrix, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), a.ncols(), "x length");
    assert_eq!(y.len(), a.nrows(), "y length");
    let rowptr = a.rowptr();
    let colind = a.colind();
    let values = a.values();
    for (i, out) in y.iter_mut().enumerate() {
        let (lo, hi) = (rowptr[i], rowptr[i + 1]);
        *out = row_dot(&colind[lo..hi], &values[lo..hi], x);
    }
}

/// The original Listing 2 scalar kernel: one sequential accumulator chain
/// per row, summed in entry order.
///
/// Kept as the roofline baseline for `spmv-bench` (its loop-carried f32
/// dependence is what the lane-split kernels exist to break) and as the
/// reference the sequential-order regression test compares against. Not
/// used by any production path; its sums differ from [`spmv_into`] in the
/// last bits whenever a row has ≥ 2 entries with rounding.
pub fn spmv_scalar_into(a: &CsrMatrix, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), a.ncols(), "x length");
    assert_eq!(y.len(), a.nrows(), "y length");
    let rowptr = a.rowptr();
    let colind = a.colind();
    let values = a.values();
    for (i, out) in y.iter_mut().enumerate() {
        let mut acc = 0f32;
        for k in rowptr[i]..rowptr[i + 1] {
            acc += x[colind[k] as usize] * values[k];
        }
        *out = acc;
    }
}

/// Parallel CSR SpMV: row partitions of `partsize` rows are distributed
/// across threads with dynamic scheduling (the analog of
/// `#pragma omp parallel for schedule(dynamic, partsize)` in Listing 2).
pub fn spmv_parallel(a: &CsrMatrix, x: &[f32], partsize: usize) -> Vec<f32> {
    let mut y = vec![0f32; a.nrows()];
    spmv_parallel_into(a, x, &mut y, partsize);
    y
}

/// Parallel CSR SpMV into a caller-provided output.
pub fn spmv_parallel_into(a: &CsrMatrix, x: &[f32], y: &mut [f32], partsize: usize) {
    assert_eq!(x.len(), a.ncols(), "x length");
    assert_eq!(y.len(), a.nrows(), "y length");
    assert!(partsize > 0, "partition size must be positive");
    let rowptr = a.rowptr();
    let colind = a.colind();
    let values = a.values();
    y.par_chunks_mut(partsize)
        .enumerate()
        .for_each(|(p, chunk)| {
            let base = p * partsize;
            for (j, out) in chunk.iter_mut().enumerate() {
                let i = base + j;
                let (lo, hi) = (rowptr[i], rowptr[i + 1]);
                *out = row_dot(&colind[lo..hi], &values[lo..hi], x);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (3, 2.0)],
                vec![(1, -1.0)],
                vec![],
                vec![(0, 0.5), (1, 0.5), (2, 0.5), (3, 0.5)],
            ],
        )
    }

    #[test]
    fn matches_dense_multiply() {
        let a = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = spmv(&a, &x);
        assert_eq!(y, vec![9.0, -2.0, 0.0, 5.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        for partsize in [1, 2, 3, 64] {
            assert_eq!(spmv_parallel(&a, &x, partsize), spmv(&a, &x));
        }
    }

    #[test]
    fn scalar_kernel_matches_to_tolerance() {
        // The exact-arithmetic sample sums identically in any order.
        let a = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0f32; a.nrows()];
        spmv_scalar_into(&a, &x, &mut y);
        assert_eq!(y, spmv(&a, &x));
    }

    #[test]
    fn empty_rows_produce_zero() {
        let a = CsrMatrix::zeros(3, 3);
        assert_eq!(spmv(&a, &[1.0, 1.0, 1.0]), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        spmv(&sample(), &[1.0]);
    }

    #[test]
    fn transpose_spmv_is_adjoint() {
        // <A x, y> == <x, A^T y> — the identity iterative solvers rely on.
        let a = sample();
        let at = a.transpose_scan();
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let y = [0.5f32, -1.0, 2.0, 0.0];
        let ax = spmv(&a, &x);
        let aty = spmv(&at, &y);
        let lhs: f32 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }
}

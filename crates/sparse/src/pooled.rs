//! Pooled SpMV and reductions: static [`ExecPlan`]s driven by the
//! persistent [`WorkerPool`] (see `xct-runtime`).
//!
//! The scoped-thread kernels in [`crate::spmv`] pay a spawn per call and
//! split rows equally regardless of their nonzero count. The pooled
//! variants here split **once** at plan time — by nnz, mirroring the
//! paper's `partsize` load balancing (§3.2) — and every iteration then
//! reuses both the plan and the parked workers. Because partitions are
//! contiguous row runs and each row's accumulation order is unchanged,
//! pooled results are bit-identical to the sequential kernel for every
//! worker count.

use crate::csr::CsrMatrix;
use crate::lanes::row_dot;
use crate::reduce::dot_f64;
use xct_runtime::{ExecPlan, WorkerPool};

/// An nnz-balanced row plan for `a`: the CSR `rowptr` *is* the nonzero
/// prefix sum, so the greedy split lands each of `workers` workers on a
/// near-equal share of the matrix's nonzeroes.
pub fn csr_plan(a: &CsrMatrix, workers: usize) -> ExecPlan {
    ExecPlan::nnz_balanced(a.rowptr(), workers)
}

/// The baseline strategy for `a`: equal row counts per worker.
pub fn csr_plan_equal(a: &CsrMatrix, workers: usize) -> ExecPlan {
    ExecPlan::equal_rows(a.nrows(), workers)
}

/// Pooled CSR SpMV into a caller-provided output: `y = A·x`, each worker
/// computing the contiguous row run its plan partition assigns.
/// Bit-identical to [`crate::spmv_into`] for every worker count.
pub fn spmv_pooled_into(
    a: &CsrMatrix,
    x: &[f32],
    y: &mut [f32],
    plan: &ExecPlan,
    pool: &WorkerPool,
) {
    assert_eq!(x.len(), a.ncols(), "x length");
    assert_eq!(y.len(), a.nrows(), "y length");
    assert_eq!(plan.rows(), a.nrows(), "plan rows");
    let rowptr = a.rowptr();
    let colind = a.colind();
    let values = a.values();
    pool.run(plan, y, |_parts, rows, out| {
        for (j, slot) in out.iter_mut().enumerate() {
            let i = rows.start + j;
            let (lo, hi) = (rowptr[i], rowptr[i + 1]);
            *slot = row_dot(&colind[lo..hi], &values[lo..hi], x);
        }
    });
}

/// Fixed reduction-chunk width (elements) for [`dot_f64_pooled`]. Chunk
/// boundaries depend only on this constant — never on the worker count —
/// so per-chunk partials, and the chunk-ordered total, are bit-identical
/// for every pool size.
pub const DOT_CHUNK: usize = 4096;

/// Number of reduction chunks (plan rows / partial slots) for a vector
/// of `len` elements.
pub fn dot_chunks(len: usize) -> usize {
    len.div_ceil(DOT_CHUNK)
}

/// A plan distributing the reduction chunks of a `len`-element dot
/// product over `workers` workers.
pub fn dot_plan(len: usize, workers: usize) -> ExecPlan {
    ExecPlan::equal_rows(dot_chunks(len), workers)
}

/// Pooled deterministic dot product: each worker fills the `f64`
/// partials of its chunk run, then the caller sums the partials in chunk
/// index order. `partials` is caller-owned scratch of
/// [`dot_chunks`]`(a.len())` slots so steady-state calls allocate
/// nothing.
pub fn dot_f64_pooled(
    pool: &WorkerPool,
    plan: &ExecPlan,
    a: &[f32],
    b: &[f32],
    partials: &mut [f64],
) -> f64 {
    assert_eq!(a.len(), b.len(), "vector lengths");
    assert_eq!(partials.len(), dot_chunks(a.len()), "partials length");
    pool.run(plan, partials, |_parts, chunks, out| {
        for (j, slot) in out.iter_mut().enumerate() {
            let lo = (chunks.start + j) * DOT_CHUNK;
            let hi = (lo + DOT_CHUNK).min(a.len());
            *slot = dot_f64(&a[lo..hi], &b[lo..hi]);
        }
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::{spmv, spmv_into};

    fn skewed() -> CsrMatrix {
        // Row nnz: one dense row, several sparse ones, an empty row.
        let mut rows: Vec<Vec<(u32, f32)>> = vec![
            (0..64).map(|c| (c as u32, 0.5 + c as f32)).collect(),
            vec![(1, -1.0)],
            vec![],
            vec![(3, 2.0), (7, 1.5)],
            vec![(0, 1.0)],
        ];
        rows.push(vec![(63, 4.0)]);
        CsrMatrix::from_rows(64, &rows)
    }

    #[test]
    fn pooled_spmv_is_bit_identical_across_worker_counts() {
        let a = skewed();
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let want = spmv(&a, &x);
        for workers in [1, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            for plan in [csr_plan(&a, workers), csr_plan_equal(&a, workers)] {
                let mut y = vec![0f32; a.nrows()];
                spmv_pooled_into(&a, &x, &mut y, &plan, &pool);
                assert_eq!(y, want, "workers {workers}");
            }
        }
    }

    #[test]
    fn pooled_spmv_handles_empty_and_tiny_matrices() {
        // All-empty rows.
        let a = CsrMatrix::zeros(5, 3);
        let pool = WorkerPool::new(4);
        let mut y = vec![1f32; 5];
        spmv_pooled_into(&a, &[1.0, 2.0, 3.0], &mut y, &csr_plan(&a, 4), &pool);
        assert_eq!(y, vec![0.0; 5]);
        // More workers than rows.
        let a = CsrMatrix::from_rows(2, &[vec![(0, 2.0)], vec![(1, 3.0)]]);
        let pool = WorkerPool::new(8);
        let mut y = vec![0f32; 2];
        spmv_pooled_into(&a, &[1.0, 1.0], &mut y, &csr_plan(&a, 8), &pool);
        assert_eq!(y, vec![2.0, 3.0]);
    }

    #[test]
    fn pooled_dot_is_deterministic_across_worker_counts() {
        let n = 3 * DOT_CHUNK + 17;
        let a: Vec<f32> = (0..n).map(|i| ((i * 37) % 101) as f32 * 0.01).collect();
        let b: Vec<f32> = (0..n)
            .map(|i| ((i * 53) % 97) as f32 * 0.02 - 0.3)
            .collect();
        let mut reference = None;
        for workers in [1, 2, 8] {
            let pool = WorkerPool::new(workers);
            let plan = dot_plan(n, workers);
            let mut partials = vec![0f64; dot_chunks(n)];
            let got = dot_f64_pooled(&pool, &plan, &a, &b, &mut partials);
            let reference = *reference.get_or_insert(got);
            assert_eq!(got.to_bits(), reference.to_bits(), "workers {workers}");
        }
        // And close to (not necessarily identical to) the serial sum.
        let serial = dot_f64(&a, &b);
        let pool = WorkerPool::new(2);
        let mut partials = vec![0f64; dot_chunks(n)];
        let got = dot_f64_pooled(&pool, &dot_plan(n, 2), &a, &b, &mut partials);
        assert!((got - serial).abs() < 1e-6 * serial.abs().max(1.0));
    }

    #[test]
    fn nnz_plan_balances_the_dense_row_away() {
        let a = skewed();
        let nnz = csr_plan(&a, 2);
        let equal = csr_plan_equal(&a, 2);
        // Equal rows puts the 64-nnz row plus half the rest on worker 0;
        // the nnz plan isolates it.
        assert!(nnz.imbalance() < equal_worker_nnz_imbalance(&a, &equal));
        let mut y1 = vec![0f32; a.nrows()];
        let pool = WorkerPool::new(2);
        spmv_pooled_into(&a, &[1.0; 64], &mut y1, &nnz, &pool);
        let mut y2 = vec![0f32; a.nrows()];
        spmv_into(&a, &[1.0; 64], &mut y2);
        assert_eq!(y1, y2);
    }

    /// The nnz imbalance an equal-rows plan actually suffers on `a`.
    fn equal_worker_nnz_imbalance(a: &CsrMatrix, plan: &ExecPlan) -> f64 {
        let total = a.nnz() as f64;
        let ideal = total / plan.num_workers() as f64;
        (0..plan.num_workers())
            .map(|w| {
                let r = plan.worker_rows(w);
                (a.rowptr()[r.end] - a.rowptr()[r.start]) as f64
            })
            .fold(0.0, f64::max)
            / ideal
    }
}

//! The kernel-level seam of the operator layer: one trait over every
//! SpMV variant (serial CSR, partitioned-parallel CSR, ELL, multi-stage
//! buffered), so higher layers can hold "a projection kernel" without
//! caring which memory layout backs it.
//!
//! `memxct`'s `ProjectionOperator` implementations pair two of these
//! (forward and transpose) per backend.

use crate::buffered::{BufferIndex, BufferedCsrImpl};
use crate::csr::CsrMatrix;
use crate::ell::EllMatrix;
use crate::spmv::{spmv_into, spmv_parallel_into};

/// A sparse `y = A·x` kernel with a fixed shape.
pub trait SpmvKernel {
    /// Number of rows (output length).
    fn nrows(&self) -> usize;
    /// Number of columns (input length).
    fn ncols(&self) -> usize;
    /// Compute `y = A·x`, overwriting `y` entirely.
    fn apply_into(&self, x: &[f32], y: &mut [f32]);
}

impl SpmvKernel for CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }
    fn apply_into(&self, x: &[f32], y: &mut [f32]) {
        spmv_into(self, x, y);
    }
}

/// A CSR matrix applied with the dynamically-scheduled parallel kernel
/// (Listing 2's `schedule(dynamic, partsize)`).
pub struct ParCsr<'a> {
    /// The matrix.
    pub a: &'a CsrMatrix,
    /// Rows per scheduled partition.
    pub partsize: usize,
}

impl SpmvKernel for ParCsr<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn apply_into(&self, x: &[f32], y: &mut [f32]) {
        spmv_parallel_into(self.a, x, y, self.partsize);
    }
}

impl<I: BufferIndex> SpmvKernel for BufferedCsrImpl<I> {
    fn nrows(&self) -> usize {
        BufferedCsrImpl::nrows(self)
    }
    fn ncols(&self) -> usize {
        BufferedCsrImpl::ncols(self)
    }
    fn apply_into(&self, x: &[f32], y: &mut [f32]) {
        self.spmv_parallel_into(x, y);
    }
}

impl SpmvKernel for EllMatrix {
    fn nrows(&self) -> usize {
        EllMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        EllMatrix::ncols(self)
    }
    fn apply_into(&self, x: &[f32], y: &mut [f32]) {
        self.spmv_into(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffered::BufferedCsr;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (2, 2.0)],
                vec![(1, -1.0)],
                vec![],
                vec![(0, 0.5), (3, 4.0)],
                vec![(2, 3.0)],
            ],
        )
    }

    #[test]
    fn all_kernels_agree() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut want = vec![0f32; a.nrows()];
        a.apply_into(&x, &mut want);

        let kernels: Vec<Box<dyn SpmvKernel>> = vec![
            Box::new(ParCsr { a: &a, partsize: 2 }),
            Box::new(BufferedCsr::from_csr(&a, 2, 8)),
            Box::new(EllMatrix::from_csr(&a, 2)),
        ];
        for k in kernels {
            assert_eq!(k.nrows(), a.nrows());
            assert_eq!(k.ncols(), a.ncols());
            let mut y = vec![7f32; a.nrows()]; // nonzero: apply must overwrite
            k.apply_into(&x, &mut y);
            assert_eq!(y, want);
        }
    }
}

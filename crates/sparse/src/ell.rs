//! Column-major ELL storage with partition-level zero padding — the
//! CPU-side analog of MemXCT's GPU kernel (§3.1.4).
//!
//! On the GPU, each row partition maps to a CUDA thread block and each row
//! to a thread; storing the partition's entries column-major (transposed
//! ELL) makes consecutive threads touch consecutive memory (coalescing).
//! Padding happens per partition (to that partition's max row length), not
//! per matrix — exactly the trick the paper credits for beating cuSPARSE
//! (§4.2.5). Padded slots use column 0 with value 0 and are *multiplied
//! anyway* ("we pad with 0 and perform redundant multiplication with 0 to
//! avoid thread divergence").

use crate::csr::CsrMatrix;
use crate::lanes::LANES;
use rayon::prelude::*;

/// One partition's column-major sweep, restructured into 8-row blocks:
/// each block holds [`LANES`] independent accumulators in registers across
/// the full `width` sweep, so the slot loads (`colind`/`values` at
/// `s * rows + j`, contiguous across the block's rows — the CPU analog of
/// coalesced accesses) and the FMAs vectorize. Row `j`'s accumulation
/// order is still slot-ascending, exactly the unblocked kernel's order, so
/// this is bit-identical to the scalar column-major sweep by construction.
///
/// Accumulates into `out` (callers zero the target range first).
#[inline]
fn ell_sweep(
    rows: usize,
    width: usize,
    colind: &[u32],
    values: &[f32],
    x: &[f32],
    out: &mut [f32],
) {
    let full = rows / LANES * LANES;
    let mut j0 = 0;
    while j0 < full {
        let mut acc = [0f32; LANES];
        let mut gat = [0f32; LANES];
        for s in 0..width {
            let base = s * rows + j0;
            let c8 = &colind[base..base + LANES];
            let v8 = &values[base..base + LANES];
            for l in 0..LANES {
                // Padded slots multiply x[0] by 0 — redundant on purpose,
                // mirroring the divergence-free GPU kernel.
                gat[l] = x[c8[l] as usize];
            }
            for l in 0..LANES {
                acc[l] += gat[l] * v8[l];
            }
        }
        for l in 0..LANES {
            out[j0 + l] += acc[l];
        }
        j0 += LANES;
    }
    for j in full..rows {
        let mut a = 0f32;
        for s in 0..width {
            a += x[colind[s * rows + j] as usize] * values[s * rows + j];
        }
        out[j] += a;
    }
}

/// One ELL partition: `width` slots per row, stored column-major.
#[derive(Debug, Clone)]
struct EllPartition {
    /// Rows in this partition (≤ partsize).
    rows: usize,
    /// Max nonzeroes per row in this partition (padding width).
    width: usize,
    /// Column indices, column-major: slot `s`, row `j` at `s * rows + j`.
    colind: Vec<u32>,
    /// Values, same layout.
    values: Vec<f32>,
}

/// Read-only borrow of one ELL partition's raw layout, exposed for static
/// analysis (`xct-check`). Slots are column-major: slot `s`, row `j` lives
/// at `s * rows + j`.
#[derive(Debug, Clone, Copy)]
pub struct EllPartitionView<'a> {
    /// Rows in this partition (≤ partsize).
    pub rows: usize,
    /// Padding width (max nonzeroes per row in this partition).
    pub width: usize,
    /// Column indices, column-major, length `rows * width`.
    pub colind: &'a [u32],
    /// Values, same layout.
    pub values: &'a [f32],
}

/// ELL matrix with partition-level padding.
#[derive(Debug, Clone)]
pub struct EllMatrix {
    nrows: usize,
    ncols: usize,
    partitions: Vec<EllPartition>,
    padded_nnz: usize,
    nnz: usize,
}

impl EllMatrix {
    /// Convert a CSR matrix, partitioning rows into blocks of `partsize`.
    pub fn from_csr(a: &CsrMatrix, partsize: usize) -> Self {
        assert!(partsize > 0);
        let mut partitions = Vec::with_capacity(a.nrows().div_ceil(partsize));
        let mut padded_nnz = 0;
        for row_base in (0..a.nrows()).step_by(partsize) {
            let rows = partsize.min(a.nrows() - row_base);
            let width = (0..rows)
                .map(|j| a.rowptr()[row_base + j + 1] - a.rowptr()[row_base + j])
                .max()
                .unwrap_or(0);
            let mut colind = vec![0u32; width * rows];
            let mut values = vec![0f32; width * rows];
            for j in 0..rows {
                let lo = a.rowptr()[row_base + j];
                let hi = a.rowptr()[row_base + j + 1];
                for (s, k) in (lo..hi).enumerate() {
                    colind[s * rows + j] = a.colind()[k];
                    values[s * rows + j] = a.values()[k];
                }
            }
            padded_nnz += width * rows;
            partitions.push(EllPartition {
                rows,
                width,
                colind,
                values,
            });
        }
        EllMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            partitions,
            padded_nnz,
            nnz: a.nnz(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored (unpadded) nonzeroes.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total slots including padding; the padding overhead ratio is
    /// `padded_nnz / nnz`.
    pub fn padded_nnz(&self) -> usize {
        self.padded_nnz
    }

    /// Number of row partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Read-only view of partition `p` for static analysis.
    pub fn partition_view(&self, p: usize) -> EllPartitionView<'_> {
        let part = &self.partitions[p];
        EllPartitionView {
            rows: part.rows,
            width: part.width,
            colind: &part.colind,
            values: &part.values,
        }
    }

    /// Assemble an ELL matrix directly from per-partition raw arrays,
    /// with **no validation**. Each tuple is
    /// `(rows, width, colind, values)` in the column-major layout of the
    /// kernel. Exists so static-analysis tooling (`xct-check`) can be
    /// tested against corrupted layouts; production code should use
    /// [`EllMatrix::from_csr`].
    pub fn from_raw_parts_unchecked(
        nrows: usize,
        ncols: usize,
        nnz: usize,
        parts: Vec<(usize, usize, Vec<u32>, Vec<f32>)>,
    ) -> Self {
        let padded_nnz = parts.iter().map(|(rows, width, _, _)| rows * width).sum();
        EllMatrix {
            nrows,
            ncols,
            partitions: parts
                .into_iter()
                .map(|(rows, width, colind, values)| EllPartition {
                    rows,
                    width,
                    colind,
                    values,
                })
                .collect(),
            padded_nnz,
            nnz,
        }
    }

    /// Bytes of matrix data one SpMV streams: every padded slot moves a
    /// 4-byte column index plus a 4-byte value (padding is multiplied, not
    /// skipped, so it costs the same bandwidth).
    pub fn regular_bytes(&self) -> u64 {
        self.padded_nnz as u64 * 8
    }

    /// `y = A·x` with one "thread block" per partition.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0f32; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// ELL SpMV into a caller-provided output (overwritten).
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        y.fill(0.0); // partitions accumulate into their slice
        let chunks: Vec<(&EllPartition, &mut [f32])> = {
            // Split y into per-partition output slices.
            let mut rest = y;
            let mut out = Vec::with_capacity(self.partitions.len());
            for p in &self.partitions {
                let (head, tail) = rest.split_at_mut(p.rows);
                out.push((p, head));
                rest = tail;
            }
            out
        };
        chunks.into_par_iter().for_each(|(p, out)| {
            // Column-major sweep in 8-row blocks, emulating the coalesced
            // access of consecutive CUDA threads.
            ell_sweep(p.rows, p.width, &p.colind, &p.values, x, out);
        });
    }

    /// Sequential ELL SpMM into a caller-provided slice-major output
    /// (overwritten): `y = A · [x₁ … xₖ]`. The slice loop runs inside
    /// each partition, so the partition's column-major slots are streamed
    /// once and re-read from cache for the remaining k-1 slices; column
    /// `j` is bit-identical to [`EllMatrix::spmv_into`] on slice `j`.
    pub fn spmm_into(&self, x: &[f32], y: &mut [f32], batch: usize) {
        assert!(batch > 0, "batch width must be positive");
        assert_eq!(x.len(), self.ncols * batch, "x length");
        assert_eq!(y.len(), self.nrows * batch, "y length");
        y.fill(0.0);
        let mut base = 0usize;
        for p in &self.partitions {
            for j in 0..batch {
                let xs = &x[j * self.ncols..(j + 1) * self.ncols];
                let out = &mut y[j * self.nrows + base..j * self.nrows + base + p.rows];
                ell_sweep(p.rows, p.width, &p.colind, &p.values, xs, out);
            }
            base += p.rows;
        }
    }

    /// Pooled ELL SpMM into a caller-provided slice-major output
    /// (overwritten): one dispatch computes all k columns, each worker
    /// sweeping its partition run once with the slice loop inside each
    /// partition. Column `j` is bit-identical to
    /// [`EllMatrix::spmv_pooled_into`] (and hence to
    /// [`EllMatrix::spmv_into`]) on slice `j`.
    pub fn spmm_pooled_into(
        &self,
        x: &[f32],
        y: &mut [f32],
        batch: usize,
        plan: &xct_runtime::ExecPlan,
        pool: &xct_runtime::WorkerPool,
    ) {
        assert!(batch > 0, "batch width must be positive");
        assert_eq!(x.len(), self.ncols * batch, "x length");
        assert_eq!(y.len(), self.nrows * batch, "y length");
        assert_eq!(plan.rows(), self.nrows, "plan rows");
        assert_eq!(plan.num_partitions(), self.partitions.len(), "plan blocks");
        let bounds = plan.bounds();
        pool.run_batched(plan, y, batch, |parts, rows, mut out| {
            for j in 0..batch {
                out.block(j).fill(0.0);
            }
            for pi in parts {
                let p = &self.partitions[pi];
                let base = bounds[pi] - rows.start;
                for j in 0..batch {
                    let xs = &x[j * self.ncols..(j + 1) * self.ncols];
                    let block = out.block(j);
                    let slice = &mut block[base..base + p.rows];
                    ell_sweep(p.rows, p.width, &p.colind, &p.values, xs, slice);
                }
            }
        });
    }

    /// A balanced [`xct_runtime::ExecPlan`] over the ELL partitions: each partition
    /// is one plan block weighted by its padded slot count (padding is
    /// multiplied, not skipped, so it costs real bandwidth), and workers
    /// get contiguous partition runs.
    pub fn exec_plan(&self, workers: usize) -> xct_runtime::ExecPlan {
        let mut bounds = Vec::with_capacity(self.partitions.len() + 1);
        bounds.push(0usize);
        let mut weights = Vec::with_capacity(self.partitions.len());
        for p in &self.partitions {
            bounds.push(bounds.last().copied().unwrap_or(0) + p.rows);
            weights.push((p.rows * p.width) as u64);
        }
        xct_runtime::ExecPlan::balanced_blocks(&bounds, &weights, workers)
    }

    /// Pooled ELL SpMV into a caller-provided output (overwritten): each
    /// worker sweeps the contiguous partition run `plan` assigns it.
    /// Bit-identical to [`EllMatrix::spmv_into`] for every worker count.
    pub fn spmv_pooled_into(
        &self,
        x: &[f32],
        y: &mut [f32],
        plan: &xct_runtime::ExecPlan,
        pool: &xct_runtime::WorkerPool,
    ) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        assert_eq!(plan.rows(), self.nrows, "plan rows");
        assert_eq!(plan.num_partitions(), self.partitions.len(), "plan blocks");
        let bounds = plan.bounds();
        pool.run(plan, y, |parts, rows, out| {
            out.fill(0.0);
            for pi in parts {
                let p = &self.partitions[pi];
                let base = bounds[pi] - rows.start;
                let slice = &mut out[base..base + p.rows];
                ell_sweep(p.rows, p.width, &p.colind, &p.values, x, slice);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows(
            5,
            &[
                vec![(0, 1.0), (3, 2.0), (4, 1.5)],
                vec![(1, -1.0)],
                vec![],
                vec![(0, 0.5), (1, 0.5), (2, 0.5), (3, 0.5), (4, 0.5)],
                vec![(2, 3.0)],
            ],
        )
    }

    #[test]
    fn matches_csr_spmv() {
        let a = sample();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let want = spmv(&a, &x);
        for partsize in [1, 2, 3, 8] {
            let ell = EllMatrix::from_csr(&a, partsize);
            let got = ell.spmv(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-5, "partsize {partsize}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn partition_level_padding_is_tighter_than_matrix_level() {
        let a = sample();
        // Matrix-level padding would cost nrows * max_width = 5*5 = 25.
        let per_matrix = 25;
        let ell = EllMatrix::from_csr(&a, 2);
        assert!(ell.padded_nnz() < per_matrix, "{}", ell.padded_nnz());
        assert!(ell.padded_nnz() >= ell.nnz());
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::zeros(4, 4);
        let ell = EllMatrix::from_csr(&a, 2);
        assert_eq!(ell.spmv(&[1.0; 4]), vec![0.0; 4]);
        assert_eq!(ell.padded_nnz(), 0);
    }

    #[test]
    fn pooled_matches_sequential_for_every_worker_count() {
        let a = sample();
        let x = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        for partsize in [1, 2, 3] {
            let ell = EllMatrix::from_csr(&a, partsize);
            let mut want = vec![0f32; ell.nrows()];
            ell.spmv_into(&x, &mut want);
            for workers in [1, 2, 8] {
                let pool = xct_runtime::WorkerPool::new(workers);
                let plan = ell.exec_plan(workers);
                assert!(plan.is_well_formed());
                let mut y = vec![0f32; ell.nrows()];
                ell.spmv_pooled_into(&x, &mut y, &plan, &pool);
                assert_eq!(y, want, "partsize {partsize} workers {workers}");
            }
        }
    }

    #[test]
    fn shape_accessors() {
        let ell = EllMatrix::from_csr(&sample(), 2);
        assert_eq!(ell.nrows(), 5);
        assert_eq!(ell.ncols(), 5);
        assert_eq!(ell.nnz(), 10);
    }

    #[test]
    fn regular_bytes_counts_padded_slots() {
        let ell = EllMatrix::from_csr(&sample(), 2);
        assert_eq!(ell.regular_bytes(), ell.padded_nnz() as u64 * 8);
        assert!(ell.regular_bytes() >= ell.nnz() as u64 * 8);
    }
}

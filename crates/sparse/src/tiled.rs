//! Cache-blocked CSR execution: the x-gather grouped by Hilbert tile.
//!
//! Both MemXCT domains are Hilbert-ordered, so a contiguous range of
//! column indices *is* a spatial tile (§3.2) — blocking the irregular
//! `x[col]` gather by column range therefore blocks it by tile. This
//! layout regroups each row block's entries into per-tile segments: the
//! kernel sweeps one tile's segments at a time, so every gather inside a
//! segment lands in an `x` window of at most `col_tile * 4` bytes that
//! stays L1/L2-resident across the whole row block, instead of each row
//! re-sweeping the full domain. `cachesim::spmv_tiled_trace` models
//! exactly this access order; the `tiled_miss_rate` integration test pins
//! the modeled improvement on a real ADS1 plan.
//!
//! Determinism: row `i`'s value is accumulated tile-ascending —
//! `y[i] = (((0 + d_t0) + d_t1) + …)` where each `d_t` is the lane-order
//! [`crate::lanes::row_dot`] over the row's entries in tile `t` (original
//! order within the tile). Segment boundaries are part of the layout, not
//! of the execution plan, so serial and pooled sweeps are bit-identical
//! for every worker count.

use crate::csr::CsrMatrix;
use crate::lanes::row_dot;
use xct_runtime::{ExecPlan, WorkerPool};

/// Default row-block height: enough rows to amortize the per-segment
/// sweep, few enough that the block's output stays cache-resident.
pub const TILE_ROW_BLOCK: usize = 128;

/// Default column-tile width in f32 elements: 4096 × 4 B = 16 KB, half an
/// L1 so the tile window, the streamed entries, and the output coexist.
pub const TILE_COL_WIDTH: usize = 4096;

/// A CSR matrix re-laid-out for tile-blocked gathers.
#[derive(Debug, Clone)]
pub struct TiledCsr {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    row_block: usize,
    /// Segment ranges per row block: segments of block `b` are
    /// `blockptr[b]..blockptr[b+1]`.
    blockptr: Vec<usize>,
    /// Flattened per-segment row pointers, stride `row_block + 1`:
    /// entries of local row `j` in segment `s` are
    /// `seg_rowptr[s * (row_block+1) + j] .. seg_rowptr[s * (row_block+1) + j + 1]`
    /// (absolute offsets into `colind`/`values`).
    seg_rowptr: Vec<usize>,
    /// Global column indices, segment-grouped.
    colind: Vec<u32>,
    /// Values, matching `colind`.
    values: Vec<f32>,
}

impl TiledCsr {
    /// Re-layout `a` with the default block geometry.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        Self::with_blocks(a, TILE_ROW_BLOCK, TILE_COL_WIDTH)
    }

    /// Re-layout `a` for row blocks of `row_block` rows whose entries are
    /// regrouped by column tiles of `col_tile` elements.
    ///
    /// # Panics
    /// If `row_block` or `col_tile` is zero.
    pub fn with_blocks(a: &CsrMatrix, row_block: usize, col_tile: usize) -> Self {
        assert!(row_block > 0, "row block must be positive");
        assert!(col_tile > 0, "column tile must be positive");
        let nrows = a.nrows();
        let rowptr = a.rowptr();
        let acolind = a.colind();
        let avalues = a.values();
        let stride = row_block + 1;
        let mut blockptr = vec![0usize];
        let mut seg_rowptr: Vec<usize> = Vec::new();
        let mut colind = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        // (tile, local row, entry offset) per block entry; the stable sort
        // by (tile, row) keeps each row's within-tile entry order.
        let mut bucket: Vec<(usize, usize, usize)> = Vec::new();
        for b0 in (0..nrows).step_by(row_block) {
            let b1 = (b0 + row_block).min(nrows);
            bucket.clear();
            for i in b0..b1 {
                let (lo, hi) = (rowptr[i], rowptr[i + 1]);
                for (k, &c) in acolind[lo..hi].iter().enumerate() {
                    bucket.push((c as usize / col_tile, i - b0, lo + k));
                }
            }
            bucket.sort_by_key(|&(t, j, _)| (t, j));
            let mut e = 0usize;
            while e < bucket.len() {
                // One segment = one tile's run of this block's entries.
                let tile = bucket[e].0;
                let seg_base = seg_rowptr.len();
                seg_rowptr.resize(seg_base + stride, 0);
                let mut cursor = 0usize;
                for j in 0..row_block {
                    seg_rowptr[seg_base + j] = colind.len();
                    while e + cursor < bucket.len() {
                        let (t, r, k) = bucket[e + cursor];
                        if t != tile || r != j {
                            break;
                        }
                        colind.push(acolind[k]);
                        values.push(avalues[k]);
                        cursor += 1;
                    }
                }
                seg_rowptr[seg_base + row_block] = colind.len();
                e += cursor;
            }
            blockptr.push(seg_rowptr.len() / stride);
        }
        TiledCsr {
            nrows,
            ncols: a.ncols(),
            nnz: a.nnz(),
            row_block,
            blockptr,
            seg_rowptr,
            colind,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeroes.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Rows per block.
    pub fn row_block(&self) -> usize {
        self.row_block
    }

    /// Number of row blocks.
    pub fn num_blocks(&self) -> usize {
        self.blockptr.len() - 1
    }

    /// Total tile segments across all blocks.
    pub fn num_segments(&self) -> usize {
        self.blockptr.last().copied().unwrap_or(0)
    }

    /// The global column of every gather in execution order (blocks →
    /// tiles → rows → entries) — the sequence whose addresses
    /// `cachesim::spmv_tiled_trace` models.
    pub fn gather_order(&self) -> &[u32] {
        &self.colind
    }

    /// `y = A·x`, sequential.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0f32; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Sequential tile-blocked SpMV into a caller-provided output
    /// (overwritten).
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        y.fill(0.0);
        for b in 0..self.num_blocks() {
            let base = b * self.row_block;
            let rows = self.row_block.min(self.nrows - base);
            self.process_block(b, x, &mut y[base..base + rows]);
        }
    }

    /// A balanced [`ExecPlan`] over the row blocks (one plan block per
    /// tile block — segment structure cannot be split), weighted by
    /// entries plus segment overhead.
    pub fn exec_plan(&self, workers: usize) -> ExecPlan {
        let nblocks = self.num_blocks();
        let stride = self.row_block + 1;
        let mut bounds = Vec::with_capacity(nblocks + 1);
        let mut weights = Vec::with_capacity(nblocks);
        bounds.push(0usize);
        for b in 0..nblocks {
            bounds.push(((b + 1) * self.row_block).min(self.nrows));
            let (s0, s1) = (self.blockptr[b], self.blockptr[b + 1]);
            let entries = if s1 > s0 {
                self.seg_rowptr[s1 * stride - 1] - self.seg_rowptr[s0 * stride]
            } else {
                0
            };
            weights.push((entries + (s1 - s0) * self.row_block / 8) as u64);
        }
        ExecPlan::balanced_blocks(&bounds, &weights, workers)
    }

    /// Pooled tile-blocked SpMV into a caller-provided output
    /// (overwritten): each worker sweeps the contiguous row-block run
    /// `plan` assigns it. Bit-identical to [`TiledCsr::spmv_into`] for
    /// every worker count.
    pub fn spmv_pooled_into(&self, x: &[f32], y: &mut [f32], plan: &ExecPlan, pool: &WorkerPool) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        assert_eq!(plan.rows(), self.nrows, "plan rows");
        assert_eq!(plan.num_partitions(), self.num_blocks(), "plan blocks");
        pool.run(plan, y, |parts, rows, out| {
            out.fill(0.0);
            for b in parts {
                let base = b * self.row_block - rows.start;
                let brows = self.row_block.min(self.nrows - b * self.row_block);
                self.process_block(b, x, &mut out[base..base + brows]);
            }
        });
    }

    /// Sweep all tile segments of block `b`, accumulating into `out`
    /// (the block's rows, already zeroed). Tile-ascending per row; lane
    /// order within each `(row, tile)` entry run.
    #[inline]
    fn process_block(&self, b: usize, x: &[f32], out: &mut [f32]) {
        let stride = self.row_block + 1;
        for s in self.blockptr[b]..self.blockptr[b + 1] {
            let rp = &self.seg_rowptr[s * stride..(s + 1) * stride];
            for (j, acc) in out.iter_mut().enumerate() {
                let (lo, hi) = (rp[j], rp[j + 1]);
                if lo < hi {
                    *acc += row_dot(&self.colind[lo..hi], &self.values[lo..hi], x);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv;

    fn scattered() -> CsrMatrix {
        // Rows gathering across a wide domain, plus empty and dense rows.
        let ncols = 300usize;
        let mut rows: Vec<Vec<(u32, f32)>> = Vec::new();
        for i in 0..37 {
            let mut r = Vec::new();
            for e in 0..(i % 9) {
                let c = ((e * 67 + i * 31) % ncols) as u32;
                r.push((c, ((i * 13 + e * 7) as f32 * 0.23).sin()));
            }
            r.sort_by_key(|&(c, _)| c);
            r.dedup_by_key(|&mut (c, _)| c);
            rows.push(r);
        }
        rows.push(vec![]);
        rows.push((0..200).map(|c| (c as u32, 0.01 * c as f32)).collect());
        CsrMatrix::from_rows(ncols, &rows)
    }

    #[test]
    fn matches_plain_spmv_to_tolerance() {
        let a = scattered();
        let x: Vec<f32> = (0..a.ncols()).map(|i| (i as f32 * 0.11).cos()).collect();
        let want = spmv(&a, &x);
        for (rb, ct) in [(1, 1), (4, 16), (8, 64), (128, 4096)] {
            let t = TiledCsr::with_blocks(&a, rb, ct);
            assert_eq!(t.nnz(), a.nnz());
            let got = t.spmv(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "rb {rb} ct {ct}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn single_tile_is_bit_identical_to_unblocked_kernel() {
        // One tile covering all columns + one block covering all rows
        // degenerates to the plain lane-order kernel, bitwise.
        let a = scattered();
        let x: Vec<f32> = (0..a.ncols()).map(|i| (i as f32 * 0.17).sin()).collect();
        let t = TiledCsr::with_blocks(&a, a.nrows(), a.ncols());
        let got = t.spmv(&x);
        let want = spmv(&a, &x);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn pooled_is_bit_identical_to_serial_for_every_worker_count() {
        let a = scattered();
        let x: Vec<f32> = (0..a.ncols()).map(|i| (i as f32 * 0.29).sin()).collect();
        let t = TiledCsr::with_blocks(&a, 8, 64);
        let want = t.spmv(&x);
        for workers in [1, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            let plan = t.exec_plan(workers);
            assert!(plan.is_well_formed());
            let mut y = vec![0f32; t.nrows()];
            t.spmv_pooled_into(&x, &mut y, &plan, &pool);
            for (g, w) in y.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "workers {workers}");
            }
        }
    }

    #[test]
    fn gather_order_matches_cachesim_model() {
        let a = scattered();
        let (rb, ct) = (8, 64);
        let t = TiledCsr::with_blocks(&a, rb, ct);
        let model = xct_cachesim::spmv_tiled_trace(a.rowptr(), a.colind(), rb, ct);
        let actual: Vec<u64> = t.gather_order().iter().map(|&c| c as u64 * 4).collect();
        assert_eq!(actual, model);
    }

    #[test]
    fn empty_matrix_works() {
        let a = CsrMatrix::zeros(0, 5);
        let t = TiledCsr::from_csr(&a);
        assert_eq!(t.spmv(&[0.0; 5]), Vec::<f32>::new());
        assert_eq!(t.num_blocks(), 0);
    }
}

//! Shared f64-accumulation reductions.
//!
//! Every solver records `‖y − A·x‖` and `‖x‖` by accumulating f32
//! products in f64. Serial and distributed paths must use the *same*
//! accumulation (element order and widening) so their residual records
//! agree bit-for-bit on identical data; this module is the single home
//! for that arithmetic.

/// Dot product of two f32 slices, accumulated in f64:
/// `Σ (aᵢ as f64)·(bᵢ as f64)` in index order.
pub fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Euclidean norm of an f32 slice via [`dot_f64`].
pub fn norm_f64(a: &[f32]) -> f64 {
    dot_f64(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_widens_before_summing() {
        // 1e8 * 1e8 overflows f32 accumulation badly; f64 is exact here.
        let a = vec![1e8f32; 3];
        let d = dot_f64(&a, &a);
        assert_eq!(d, 3.0 * 1e16);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(norm_f64(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_f64(&[]), 0.0);
    }
}

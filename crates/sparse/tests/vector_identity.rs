//! Bit-identity of every vectorized kernel against its scalar reference.
//!
//! The vectorized kernels (ISSUE 9) commit to the deterministic lane
//! order specified by `xct_sparse::lanes`: 8 accumulator lanes filled
//! round-robin over each entry run, a fixed reduction tree, a sequential
//! tail. This suite recomputes every kernel family's expected output with
//! `row_dot_ref` — the plainly-written scalar model of that order — and
//! requires bitwise equality from the real kernels across
//! CSR/ELL/buffered × spmv/spmm × serial/pooled, thread counts 1/2/4,
//! and batch widths 1/4/16.
//!
//! Values are rounding-sensitive (irrational trig values), so any drift
//! in summation order fails loudly instead of rounding away.

use xct_runtime::WorkerPool;
use xct_sparse::lanes::row_dot_ref;
use xct_sparse::{
    csr_plan, spmm_into, spmm_pooled_into, spmv_into, spmv_pooled_into, BufferedCsr, CsrMatrix,
    EllMatrix, TiledCsr,
};

const THREADS: [usize; 3] = [1, 2, 4];
const BATCHES: [usize; 3] = [1, 4, 16];

/// A rounding-sensitive test matrix: irregular row lengths (0–40 entries,
/// crossing the 8-lane boundary in every residue class), scattered
/// columns, irrational values. Large enough that pooled plans split it.
fn matrix() -> CsrMatrix {
    let ncols = 233usize;
    let mut rows: Vec<Vec<(u32, f32)>> = Vec::new();
    for i in 0..311 {
        let n = (i * 17 + 5) % 41;
        let mut r: Vec<(u32, f32)> = (0..n)
            .map(|e| {
                let c = ((e * 53 + i * 29) % ncols) as u32;
                (c, ((i * 7 + e * 13) as f32 * 0.37).sin())
            })
            .collect();
        r.sort_by_key(|&(c, _)| c);
        r.dedup_by_key(|&mut (c, _)| c);
        rows.push(r);
    }
    CsrMatrix::from_rows(ncols, &rows)
}

fn xvec(ncols: usize, slice: usize) -> Vec<f32> {
    (0..ncols)
        .map(|i| ((i * 11 + slice * 97) as f32 * 0.23).cos())
        .collect()
}

/// Slice-major batched right-hand side built from `xvec` slices.
fn xbatch(ncols: usize, batch: usize) -> Vec<f32> {
    (0..batch).flat_map(|j| xvec(ncols, j)).collect()
}

/// CSR reference: `row_dot_ref` over each row's stored entries.
fn csr_ref(a: &CsrMatrix, x: &[f32]) -> Vec<f32> {
    (0..a.nrows())
        .map(|i| {
            let (lo, hi) = (a.rowptr()[i], a.rowptr()[i + 1]);
            row_dot_ref(&a.colind()[lo..hi], &a.values()[lo..hi], x)
        })
        .collect()
}

/// ELL reference: per row, slot-ascending sequential accumulation over the
/// padded width (padding multiplies x[0] by 0, as the kernel does). The
/// 8-row-blocked kernel must preserve exactly this per-row order.
fn ell_ref(e: &EllMatrix, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0f32; e.nrows()];
    let mut base = 0usize;
    for p in 0..e.num_partitions() {
        let v = e.partition_view(p);
        for j in 0..v.rows {
            let mut acc = 0f32;
            for s in 0..v.width {
                acc += x[v.colind[s * v.rows + j] as usize] * v.values[s * v.rows + j];
            }
            y[base + j] = acc;
        }
        base += v.rows;
    }
    y
}

/// Buffered reference: per row, stages ascending; each stage's entry run
/// reduced in lane order (via the stage map back to global columns) and
/// added to the row's accumulator.
fn buffered_ref(b: &BufferedCsr, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0f32; b.nrows()];
    let partsize = b.partsize();
    for p in 0..b.num_partitions() {
        let rows = partsize.min(b.nrows() - p * partsize);
        for j in 0..rows {
            let i = p * partsize + j;
            let mut acc = 0f32;
            for stage in b.partdispl()[p] as usize..b.partdispl()[p + 1] as usize {
                let d0 = b.entry_displ()[stage * partsize + j];
                let d1 = b.entry_displ()[stage * partsize + j + 1];
                let mlo = b.stagedispl()[stage];
                let cols: Vec<u32> = b.entry_ind()[d0..d1]
                    .iter()
                    .map(|&ix| b.stage_map()[mlo + ix as usize])
                    .collect();
                acc += row_dot_ref(&cols, &b.entry_val()[d0..d1], x);
            }
            y[i] = acc;
        }
    }
    y
}

/// Tiled reference: per row, tiles ascending; each `(row, tile)` entry run
/// reduced in lane order.
fn tiled_ref(a: &CsrMatrix, row_block: usize, col_tile: usize, x: &[f32]) -> Vec<f32> {
    (0..a.nrows())
        .map(|i| {
            let (lo, hi) = (a.rowptr()[i], a.rowptr()[i + 1]);
            let mut runs: Vec<(usize, Vec<(u32, f32)>)> = Vec::new();
            for k in lo..hi {
                let t = a.colind()[k] as usize / col_tile;
                match runs.iter_mut().find(|(rt, _)| *rt == t) {
                    Some((_, run)) => run.push((a.colind()[k], a.values()[k])),
                    None => runs.push((t, vec![(a.colind()[k], a.values()[k])])),
                }
            }
            runs.sort_by_key(|&(t, _)| t);
            let _ = row_block; // row blocking never reorders a single row
            runs.iter().fold(0f32, |acc, (_, run)| {
                let cols: Vec<u32> = run.iter().map(|&(c, _)| c).collect();
                let vals: Vec<f32> = run.iter().map(|&(_, v)| v).collect();
                acc + row_dot_ref(&cols, &vals, x)
            })
        })
        .collect()
}

fn assert_bits(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: row {i}: {g} vs {w}");
    }
}

#[test]
fn csr_serial_spmv_matches_lane_reference() {
    let a = matrix();
    let x = xvec(a.ncols(), 0);
    let want = csr_ref(&a, &x);
    let mut y = vec![0f32; a.nrows()];
    spmv_into(&a, &x, &mut y);
    assert_bits(&y, &want, "csr serial spmv");
}

#[test]
fn csr_pooled_spmv_matches_lane_reference_across_threads() {
    let a = matrix();
    let x = xvec(a.ncols(), 0);
    let want = csr_ref(&a, &x);
    for workers in THREADS {
        let pool = WorkerPool::new(workers);
        let plan = csr_plan(&a, workers);
        let mut y = vec![0f32; a.nrows()];
        spmv_pooled_into(&a, &x, &mut y, &plan, &pool);
        assert_bits(&y, &want, &format!("csr pooled spmv w{workers}"));
    }
}

#[test]
fn csr_spmm_matches_lane_reference_across_batches_and_threads() {
    let a = matrix();
    for batch in BATCHES {
        let x = xbatch(a.ncols(), batch);
        let mut y = vec![0f32; a.nrows() * batch];
        spmm_into(&a, &x, &mut y, batch);
        for j in 0..batch {
            let want = csr_ref(&a, &xvec(a.ncols(), j));
            assert_bits(
                &y[j * a.nrows()..(j + 1) * a.nrows()],
                &want,
                &format!("csr serial spmm b{batch} s{j}"),
            );
        }
        for workers in THREADS {
            let pool = WorkerPool::new(workers);
            let plan = csr_plan(&a, workers);
            let mut y = vec![0f32; a.nrows() * batch];
            spmm_pooled_into(&a, &x, &mut y, batch, &plan, &pool);
            for j in 0..batch {
                let want = csr_ref(&a, &xvec(a.ncols(), j));
                assert_bits(
                    &y[j * a.nrows()..(j + 1) * a.nrows()],
                    &want,
                    &format!("csr pooled spmm w{workers} b{batch} s{j}"),
                );
            }
        }
    }
}

#[test]
fn ell_kernels_match_slot_order_reference() {
    let a = matrix();
    let e = EllMatrix::from_csr(&a, 24);
    let x = xvec(a.ncols(), 0);
    let want = ell_ref(&e, &x);
    let mut y = vec![0f32; e.nrows()];
    e.spmv_into(&x, &mut y);
    assert_bits(&y, &want, "ell serial spmv");
    for workers in THREADS {
        let pool = WorkerPool::new(workers);
        let plan = e.exec_plan(workers);
        let mut y = vec![0f32; e.nrows()];
        e.spmv_pooled_into(&x, &mut y, &plan, &pool);
        assert_bits(&y, &want, &format!("ell pooled spmv w{workers}"));
        for batch in BATCHES {
            let xb = xbatch(a.ncols(), batch);
            let mut yb = vec![0f32; e.nrows() * batch];
            e.spmm_pooled_into(&xb, &mut yb, batch, &plan, &pool);
            for j in 0..batch {
                let want_j = ell_ref(&e, &xvec(a.ncols(), j));
                assert_bits(
                    &yb[j * e.nrows()..(j + 1) * e.nrows()],
                    &want_j,
                    &format!("ell pooled spmm w{workers} b{batch} s{j}"),
                );
            }
        }
    }
    for batch in BATCHES {
        let xb = xbatch(a.ncols(), batch);
        let mut yb = vec![0f32; e.nrows() * batch];
        e.spmm_into(&xb, &mut yb, batch);
        for j in 0..batch {
            let want_j = ell_ref(&e, &xvec(a.ncols(), j));
            assert_bits(
                &yb[j * e.nrows()..(j + 1) * e.nrows()],
                &want_j,
                &format!("ell serial spmm b{batch} s{j}"),
            );
        }
    }
}

#[test]
fn buffered_kernels_match_staged_lane_reference() {
    let a = matrix();
    // A buffer smaller than most partition footprints forces multi-stage
    // partitions, exercising the per-stage accumulation order.
    let b = BufferedCsr::from_csr(&a, 24, 64);
    assert!(b.num_stages() > b.num_partitions(), "want multi-stage");
    let x = xvec(a.ncols(), 0);
    let want = buffered_ref(&b, &x);
    let mut y = vec![0f32; b.nrows()];
    b.spmv_into(&x, &mut y);
    assert_bits(&y, &want, "buffered serial spmv");
    for workers in THREADS {
        let pool = WorkerPool::new(workers);
        let plan = b.exec_plan(workers);
        let mut y = vec![0f32; b.nrows()];
        b.spmv_pooled_into(&x, &mut y, &plan, &pool);
        assert_bits(&y, &want, &format!("buffered pooled spmv w{workers}"));
        for batch in BATCHES {
            let xb = xbatch(a.ncols(), batch);
            let mut yb = vec![0f32; b.nrows() * batch];
            b.spmm_pooled_into(&xb, &mut yb, batch, &plan, &pool);
            for j in 0..batch {
                let want_j = buffered_ref(&b, &xvec(a.ncols(), j));
                assert_bits(
                    &yb[j * b.nrows()..(j + 1) * b.nrows()],
                    &want_j,
                    &format!("buffered pooled spmm w{workers} b{batch} s{j}"),
                );
            }
        }
    }
    for batch in BATCHES {
        let xb = xbatch(a.ncols(), batch);
        let mut yb = vec![0f32; b.nrows() * batch];
        b.spmm_into(&xb, &mut yb, batch);
        for j in 0..batch {
            let want_j = buffered_ref(&b, &xvec(a.ncols(), j));
            assert_bits(
                &yb[j * b.nrows()..(j + 1) * b.nrows()],
                &want_j,
                &format!("buffered serial spmm b{batch} s{j}"),
            );
        }
    }
}

#[test]
fn tiled_kernels_match_tile_order_reference() {
    let a = matrix();
    let (rb, ct) = (32, 64);
    let t = TiledCsr::with_blocks(&a, rb, ct);
    let x = xvec(a.ncols(), 0);
    let want = tiled_ref(&a, rb, ct, &x);
    let got = t.spmv(&x);
    assert_bits(&got, &want, "tiled serial spmv");
    for workers in THREADS {
        let pool = WorkerPool::new(workers);
        let plan = t.exec_plan(workers);
        let mut y = vec![0f32; t.nrows()];
        t.spmv_pooled_into(&x, &mut y, &plan, &pool);
        assert_bits(&y, &want, &format!("tiled pooled spmv w{workers}"));
    }
}

#[test]
fn single_slice_spmm_is_the_spmv_bitwise_for_all_families() {
    let a = matrix();
    let x = xvec(a.ncols(), 0);
    let mut spmv_y = vec![0f32; a.nrows()];
    spmv_into(&a, &x, &mut spmv_y);
    let mut spmm_y = vec![0f32; a.nrows()];
    spmm_into(&a, &x, &mut spmm_y, 1);
    assert_bits(&spmm_y, &spmv_y, "csr spmm(1) == spmv");

    let e = EllMatrix::from_csr(&a, 24);
    let mut ev = vec![0f32; e.nrows()];
    e.spmv_into(&x, &mut ev);
    let mut em = vec![0f32; e.nrows()];
    e.spmm_into(&x, &mut em, 1);
    assert_bits(&em, &ev, "ell spmm(1) == spmv");

    let b = BufferedCsr::from_csr(&a, 24, 64);
    let mut bv = vec![0f32; b.nrows()];
    b.spmv_into(&x, &mut bv);
    let mut bm = vec![0f32; b.nrows()];
    b.spmm_into(&x, &mut bm, 1);
    assert_bits(&bm, &bv, "buffered spmm(1) == spmv");
}

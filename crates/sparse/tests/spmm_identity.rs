//! Batched vs. looped-single-slice bit-identity: column `j` of
//! `A · [x₁ … xₖ]` must equal `A · xⱼ` bitwise for all three kernel
//! families (CSR, buffered-u16, ELL), serial and pooled, at 1/2/4
//! worker threads.

use xct_runtime::WorkerPool;
use xct_sparse::{
    csr_plan, spmm_into, spmm_pooled_into, spmv_into, BufferedCsr, CsrMatrix, EllMatrix,
};

/// A matrix with skewed row lengths, empty rows, and enough rows to span
/// several partitions and at least one CSR SpMM row tile.
fn matrix() -> CsrMatrix {
    let ncols = 96u32;
    let mut rows: Vec<Vec<(u32, f32)>> = Vec::new();
    for i in 0..400usize {
        let nnz = match i % 7 {
            0 => 0,
            1 => 13,
            2 => 1,
            _ => 4,
        };
        // BTreeMap dedups and sorts the columns, as CSR rows require.
        let mut row = std::collections::BTreeMap::new();
        for k in 0..nnz {
            let c = ((i * 31 + k * 17) % ncols as usize) as u32;
            row.insert(c, ((i * 7 + k) as f32 * 0.113).sin());
        }
        rows.push(row.into_iter().collect());
    }
    CsrMatrix::from_rows(ncols as usize, &rows)
}

fn rhs(ncols: usize, batch: usize) -> Vec<f32> {
    (0..ncols * batch)
        .map(|i| ((i * 53 + 7) % 211) as f32 * 0.0091 - 0.7)
        .collect()
}

fn assert_bitwise(got: &[f32], want: &[f32], tag: &str) {
    assert_eq!(got.len(), want.len(), "{tag}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{tag}: element {i}: {g} vs {w}");
    }
}

#[test]
fn csr_spmm_columns_equal_spmv_serial_and_pooled() {
    let a = matrix();
    for batch in [1usize, 2, 4, 16] {
        let x = rhs(a.ncols(), batch);
        // Serial reference per slice.
        let mut want = vec![0f32; a.nrows() * batch];
        for j in 0..batch {
            spmv_into(
                &a,
                &x[j * a.ncols()..(j + 1) * a.ncols()],
                &mut want[j * a.nrows()..(j + 1) * a.nrows()],
            );
        }
        let mut y = vec![0f32; a.nrows() * batch];
        spmm_into(&a, &x, &mut y, batch);
        assert_bitwise(&y, &want, &format!("csr serial k={batch}"));
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let plan = csr_plan(&a, workers);
            let mut y = vec![0f32; a.nrows() * batch];
            spmm_pooled_into(&a, &x, &mut y, batch, &plan, &pool);
            assert_bitwise(&y, &want, &format!("csr pooled k={batch} w={workers}"));
        }
    }
}

#[test]
fn buffered_spmm_columns_equal_spmv_serial_and_pooled() {
    let a = matrix();
    let b = BufferedCsr::from_csr(&a, 32, 64);
    for batch in [1usize, 2, 4] {
        let x = rhs(a.ncols(), batch);
        let mut want = vec![0f32; a.nrows() * batch];
        for j in 0..batch {
            b.spmv_into(
                &x[j * a.ncols()..(j + 1) * a.ncols()],
                &mut want[j * a.nrows()..(j + 1) * a.nrows()],
            );
        }
        // The buffered kernel itself is bit-identical to plain CSR per
        // row, so the families agree bitwise too — but the invariant
        // under test here is batched-vs-looped within the family.
        let mut y = vec![0f32; a.nrows() * batch];
        b.spmm_into(&x, &mut y, batch);
        assert_bitwise(&y, &want, &format!("buffered serial k={batch}"));
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let plan = b.exec_plan(workers);
            let mut y = vec![0f32; a.nrows() * batch];
            b.spmm_pooled_into(&x, &mut y, batch, &plan, &pool);
            assert_bitwise(&y, &want, &format!("buffered pooled k={batch} w={workers}"));
        }
    }
}

#[test]
fn ell_spmm_columns_equal_spmv_serial_and_pooled() {
    let a = matrix();
    let ell = EllMatrix::from_csr(&a, 32);
    for batch in [1usize, 2, 4] {
        let x = rhs(a.ncols(), batch);
        let mut want = vec![0f32; a.nrows() * batch];
        for j in 0..batch {
            ell.spmv_into(
                &x[j * a.ncols()..(j + 1) * a.ncols()],
                &mut want[j * a.nrows()..(j + 1) * a.nrows()],
            );
        }
        let mut y = vec![0f32; a.nrows() * batch];
        ell.spmm_into(&x, &mut y, batch);
        assert_bitwise(&y, &want, &format!("ell serial k={batch}"));
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let plan = ell.exec_plan(workers);
            let mut y = vec![0f32; a.nrows() * batch];
            ell.spmm_pooled_into(&x, &mut y, batch, &plan, &pool);
            assert_bitwise(&y, &want, &format!("ell pooled k={batch} w={workers}"));
        }
    }
}

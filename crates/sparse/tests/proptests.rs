//! Property tests: every SpMV kernel variant computes the same product as
//! the sequential reference on random sparse matrices, the scan transpose
//! is a stable involution, and buffered re-layout conserves nonzeroes.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xct_sparse::{spmv, spmv_parallel, BufferedCsr, CsrMatrix, EllMatrix};

/// Random sparse matrix with ~`density` fill, deterministic in `seed`.
fn random_csr(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let rows: Vec<Vec<(u32, f32)>> = (0..nrows)
        .map(|_| {
            let mut row = Vec::new();
            for c in 0..ncols {
                if rng.gen::<f64>() < density {
                    row.push((c as u32, rng.gen_range(-2.0f32..2.0)));
                }
            }
            row
        })
        .collect();
    CsrMatrix::from_rows(ncols, &rows)
}

fn random_x(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcdef);
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!((x - y).abs() <= tol * scale, "mismatch at {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_spmv_matches(
        nrows in 1usize..60, ncols in 1usize..60,
        density in 0.0f64..0.5, seed in any::<u64>(),
        partsize in 1usize..32,
    ) {
        let a = random_csr(nrows, ncols, density, seed);
        let x = random_x(ncols, seed);
        assert_close(&spmv_parallel(&a, &x, partsize), &spmv(&a, &x), 1e-5);
    }

    #[test]
    fn ell_spmv_matches(
        nrows in 1usize..50, ncols in 1usize..50,
        density in 0.0f64..0.5, seed in any::<u64>(),
        partsize in 1usize..24,
    ) {
        let a = random_csr(nrows, ncols, density, seed);
        let x = random_x(ncols, seed);
        let ell = EllMatrix::from_csr(&a, partsize);
        prop_assert_eq!(ell.nnz(), a.nnz());
        prop_assert!(ell.padded_nnz() >= ell.nnz());
        assert_close(&ell.spmv(&x), &spmv(&a, &x), 1e-5);
    }

    #[test]
    fn buffered_spmv_matches(
        nrows in 1usize..50, ncols in 1usize..50,
        density in 0.0f64..0.5, seed in any::<u64>(),
        partsize in 1usize..24, buffsize in 1usize..32,
    ) {
        let a = random_csr(nrows, ncols, density, seed);
        let x = random_x(ncols, seed);
        let b = BufferedCsr::from_csr(&a, partsize, buffsize);
        prop_assert_eq!(b.nnz(), a.nnz());
        assert_close(&b.spmv(&x), &spmv(&a, &x), 1e-5);
        assert_close(&b.spmv_parallel(&x), &spmv(&a, &x), 1e-5);
    }

    #[test]
    fn transpose_is_stable_involution(
        nrows in 1usize..40, ncols in 1usize..40,
        density in 0.0f64..0.5, seed in any::<u64>(),
    ) {
        let a = random_csr(nrows, ncols, density, seed);
        let tt = a.transpose_scan().transpose_scan();
        prop_assert_eq!(&a, &tt);
    }

    #[test]
    fn transpose_is_adjoint(
        n in 1usize..40, density in 0.0f64..0.5, seed in any::<u64>(),
    ) {
        let a = random_csr(n, n, density, seed);
        let at = a.transpose_scan();
        let x = random_x(n, seed);
        let y = random_x(n, seed ^ 1);
        let ax = spmv(&a, &x);
        let aty = spmv(&at, &y);
        let lhs: f64 = ax.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-4 * lhs.abs().max(rhs.abs()).max(1.0));
    }

    #[test]
    fn buffered_footprint_bounded_by_columns(
        nrows in 1usize..40, ncols in 1usize..40,
        density in 0.0f64..0.6, seed in any::<u64>(),
        partsize in 1usize..16,
    ) {
        let a = random_csr(nrows, ncols, density, seed);
        let b = BufferedCsr::from_csr(&a, partsize, 16);
        // Each partition's footprint is at most min(ncols, its nnz).
        prop_assert!(b.map_len() <= a.nnz());
        prop_assert!(b.map_len() <= b.num_partitions() * ncols);
    }
}

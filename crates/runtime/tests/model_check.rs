//! Model-checked concurrency suite for the runtime crate: the
//! `xct-model` schedule explorer drives the worker-pool dispatch
//! handshake and the communicator's barrier/deadline paths through every
//! interleaving of small configurations, and must *deterministically*
//! rediscover the seeded PR 4 bug class (concurrent dispatch without the
//! dispatch lock).

use xct_model::sync::Arc;
use xct_model::{explore, replay, Config, FailureKind};
use xct_obs::Metrics;
use xct_runtime::{run_ranks, run_ranks_with, CommConfig, CommErrorKind, ExecPlan, WorkerPool};

/// The 2-worker dispatch epoch handshake, explored exhaustively: one
/// dispatcher, one parked worker, publish → work → drain → reuse. Every
/// interleaving must complete with the correct output and no deadlock or
/// lost wakeup.
#[test]
fn two_worker_dispatch_handshake_is_exhaustively_clean() {
    let report = explore(&Config::dfs(), || {
        let pool = WorkerPool::with_metrics(2, Metrics::noop());
        let plan = ExecPlan::equal_rows(4, 2);
        let mut out = vec![0usize; 4];
        pool.run(&plan, &mut out, |_parts, rows, slice| {
            for (i, v) in slice.iter_mut().enumerate() {
                *v = rows.start + i;
            }
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        drop(pool);
    });
    report.assert_clean();
    assert!(report.complete, "handshake tree must be fully explored");
    assert!(report.schedules > 1);
}

/// Two threads calling `run(&self)` concurrently on a shared pool — the
/// exact situation of the PR 4 bug — with the dispatch lock in place:
/// clean under every explored interleaving.
#[test]
fn concurrent_serialized_dispatch_is_clean() {
    let report = explore(&Config::dfs().preemptions(1), || {
        let pool = Arc::new(WorkerPool::with_metrics(2, Metrics::noop()));
        let plan = ExecPlan::equal_rows(2, 2);
        let p2 = pool.clone();
        let t = xct_model::thread::spawn(move || {
            let mut out = vec![0u64; 2];
            p2.run(&ExecPlan::equal_rows(2, 2), &mut out, |_p, rows, s| {
                for (i, v) in s.iter_mut().enumerate() {
                    *v = (rows.start + i) as u64 + 10;
                }
            });
            assert_eq!(out, vec![10, 11]);
        });
        let mut out = vec![0u64; 2];
        pool.run(&plan, &mut out, |_p, rows, s| {
            for (i, v) in s.iter_mut().enumerate() {
                *v = (rows.start + i) as u64;
            }
        });
        assert_eq!(out, vec![0, 1]);
        t.join().unwrap();
        drop(pool);
    });
    report.assert_clean();
}

fn unserialized_race_body() {
    let pool = Arc::new(WorkerPool::with_metrics(2, Metrics::noop()));
    let p2 = pool.clone();
    let t = xct_model::thread::spawn(move || {
        let mut out = vec![0u64; 2];
        p2.run_unserialized_for_model(&ExecPlan::equal_rows(2, 2), &mut out, |_p, _r, _s| {});
    });
    let mut out = vec![0u64; 2];
    pool.run_unserialized_for_model(&ExecPlan::equal_rows(2, 2), &mut out, |_p, _r, _s| {});
    t.join().unwrap();
    drop(pool);
}

/// The seeded regression: dispatching **without** the dispatch lock (the
/// mutated protocol kept in `run_unserialized_for_model`) races two
/// publishes into the single `DispatchState`. The checker must find a
/// failing interleaving, report the same trace ID on every run, and the
/// trace must replay to the same failure. CI greps this test's output for
/// the replayable `xm1-` trace ID.
#[test]
fn unserialized_dispatch_race_is_caught_deterministically() {
    let cfg = Config::dfs();
    let a = explore(&cfg, unserialized_race_body);
    let f1 = a
        .failure
        .expect("the checker must catch the unserialized-dispatch race");
    println!("seeded PR4-class race caught: {f1}");
    assert!(
        matches!(f1.kind, FailureKind::Panic | FailureKind::Deadlock),
        "expected a protocol-violation panic or a stuck barrier, got {f1}"
    );
    if f1.kind == FailureKind::Panic {
        assert!(
            f1.message.contains("pool protocol violation"),
            "the hardened remaining-count must name the violation: {f1}"
        );
    }
    assert!(f1.trace.as_str().starts_with("xm1-"));

    let b = explore(&cfg, unserialized_race_body);
    let f2 = b.failure.expect("found again on the second run");
    assert_eq!(f1.trace, f2.trace, "trace IDs must be deterministic");
    assert_eq!(f1.schedule, f2.schedule);

    let r = replay(&f1.trace, &cfg, unserialized_race_body);
    let fr = r.failure.expect("replay must reproduce the failure");
    assert_eq!(fr.kind, f1.kind);
}

/// Kernel panics drain the barrier and re-raise on the dispatcher; the
/// pool stays healthy and dispatchable afterwards, under every explored
/// interleaving.
#[test]
fn panic_in_kernel_drains_and_pool_stays_usable() {
    let report = explore(&Config::dfs().preemptions(1), || {
        let pool = WorkerPool::with_metrics(2, Metrics::noop());
        let plan = ExecPlan::equal_rows(2, 2);
        let mut out = vec![0u8; 2];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&plan, &mut out, |_p, rows, _s| {
                if rows.start == 0 {
                    panic!("kernel bang");
                }
            });
        }));
        assert!(err.is_err(), "worker panic must re-raise on the dispatcher");
        pool.check_healthy()
            .expect("kernel panics must not poison the pool");
        pool.run(&plan, &mut out, |_p, _rows, s| {
            for v in s.iter_mut() {
                *v = 7;
            }
        });
        assert_eq!(out, vec![7, 7]);
        drop(pool);
    });
    report.assert_clean();
}

/// The 2-rank barrier handshake (generation counter + condvar), explored
/// through the facade: every interleaving reaches the next generation
/// with no deadlock.
#[test]
fn comm_rank_join_barrier_is_clean() {
    let report = explore(&Config::dfs().preemptions(1), || {
        let (vals, _ledger) = run_ranks(2, |comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(vals, vec![0, 1]);
    });
    report.assert_clean();
}

/// The deadline path under virtual time: one rank never shows up (it
/// sleeps past the deadline), the other's barrier must time out with the
/// typed error — instantly, in every interleaving, with no real sleeping.
#[test]
fn comm_barrier_deadline_fires_under_virtual_time() {
    use std::time::Duration;
    let start = std::time::Instant::now();
    let cfg = CommConfig {
        deadline: Some(Duration::from_millis(50)),
        poll: Duration::from_millis(10),
        ..CommConfig::default()
    };
    let report = explore(&Config::dfs().preemptions(1), move || {
        let out = run_ranks_with(2, cfg, Default::default(), |comm| {
            if comm.rank() == 1 {
                // Sleeps (virtually) past the deadline: rank 0 must not
                // hang on the barrier.
                xct_model::thread::sleep(Duration::from_secs(5));
            }
            comm.try_barrier()
        });
        let err = out.expect_err("the run must surface rank 0's timeout");
        assert!(
            matches!(
                err.kind,
                CommErrorKind::Timeout { .. } | CommErrorKind::Aborted { .. }
            ),
            "expected a deadline timeout, got {err:?}"
        );
    });
    report.assert_clean();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "deadline exploration must run on the virtual clock"
    );
}

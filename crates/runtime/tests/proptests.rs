//! Property tests for the communicator: collective semantics must hold
//! for arbitrary rank counts and message sizes, and the traffic ledger
//! must account every byte exactly.

use proptest::prelude::*;
use xct_runtime::run_ranks;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alltoallv_delivers_everything(
        size in 1usize..6,
        seed in any::<u32>(),
    ) {
        // Rank r sends to q a buffer of length (r*7 + q*3 + seed) % 5
        // filled with a value encoding (r, q).
        let (results, ledger) = run_ranks(size, |c| {
            let send: Vec<Vec<f32>> = (0..size)
                .map(|q| {
                    let len = ((c.rank() * 7 + q * 3 + seed as usize) % 5) as usize;
                    vec![(c.rank() * 100 + q) as f32; len]
                })
                .collect();
            c.alltoallv(send)
        });
        let mut expected_bytes = 0u64;
        for (rank, recv) in results.iter().enumerate() {
            for (src, buf) in recv.iter().enumerate() {
                let len = (src * 7 + rank * 3 + seed as usize) % 5;
                prop_assert_eq!(buf.len(), len);
                for &v in buf {
                    prop_assert_eq!(v, (src * 100 + rank) as f32);
                }
                if src != rank {
                    expected_bytes += len as u64 * 4;
                }
            }
        }
        prop_assert_eq!(ledger.total(), expected_bytes);
    }

    #[test]
    fn allreduce_is_order_independent_and_exact(
        size in 1usize..6,
        values in prop::collection::vec(-100i32..100, 1..8),
    ) {
        let vals = values.clone();
        let (results, _) = run_ranks(size, move |c| {
            // Integer-valued f32 so the sum is exact.
            let mut v: Vec<f32> = vals.iter().map(|&x| (x + c.rank() as i32) as f32).collect();
            c.allreduce_sum(&mut v);
            v
        });
        let rank_sum: i64 = (0..size as i64).sum();
        for r in &results {
            for (i, &got) in r.iter().enumerate() {
                let want = size as i64 * values[i] as i64 + rank_sum;
                prop_assert_eq!(got as i64, want);
            }
        }
        // Every rank computed the identical result.
        for r in &results[1..] {
            prop_assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn ledger_send_recv_totals_are_consistent(size in 2usize..6) {
        let (_, ledger) = run_ranks(size, |c| {
            let send: Vec<Vec<f32>> = (0..size).map(|q| vec![0.5; q + 1]).collect();
            c.alltoallv(send)
        });
        let sent: u64 = (0..size).map(|r| ledger.sent_by(r)).sum();
        let recvd: u64 = (0..size).map(|r| ledger.received_by(r)).sum();
        prop_assert_eq!(sent, recvd);
        prop_assert_eq!(sent, ledger.total());
    }

    #[test]
    fn alltoallv_u32_roundtrips(size in 1usize..5, base in 0u32..1000) {
        let (results, _) = run_ranks(size, move |c| {
            let send: Vec<Vec<u32>> = (0..size)
                .map(|q| (0..3).map(|i| base + (c.rank() * 16 + q * 4 + i) as u32).collect())
                .collect();
            c.alltoallv_u32(send)
        });
        for (rank, recv) in results.iter().enumerate() {
            for (src, buf) in recv.iter().enumerate() {
                let want: Vec<u32> =
                    (0..3).map(|i| base + (src * 16 + rank * 4 + i) as u32).collect();
                prop_assert_eq!(buf, &want);
            }
        }
    }
}

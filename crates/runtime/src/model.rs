//! Analytic machine performance model (the documented substitution for
//! the paper's supercomputers — see DESIGN.md).
//!
//! MemXCT's kernels are memory-bandwidth-bound (§4.2.2): a device's SpMV
//! time is `regular bytes / effective bandwidth`, where the effective
//! bandwidth depends on whether the per-device working set fits the fast
//! memory (MCDRAM / HBM) — this single mechanism produces both the
//! super-linear strong scaling of Table 5 and the DRAM-bound worst case of
//! Table 4. Communication follows the α–β model: `t = α·peers + bytes/β`.
//!
//! All *volumes* fed into this model are computed exactly by the real
//! partitioner; only the rates below are taken from Table 2 and public
//! interconnect specs.

/// Per-device and per-node machine characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Machine name.
    pub name: &'static str,
    /// Fast (on-package) memory capacity per device, bytes
    /// (KNL MCDRAM 16 GB, K20X 6 GB, K80 12 GB...).
    pub fast_capacity: f64,
    /// Fast-memory bandwidth per device, bytes/s (Table 2 "Mem. B/W").
    pub fast_bandwidth: f64,
    /// Slow-tier capacity per node, bytes (KNL DDR4 192 GB; for GPUs this
    /// is host memory reachable over the link).
    pub slow_capacity: f64,
    /// Slow-tier bandwidth, bytes/s (KNL DDR4 90 GB/s; GPU host link).
    pub slow_bandwidth: f64,
    /// Fraction of theoretical bandwidth sustained by SpMV streams
    /// (the paper measures 73–92 %; we use the midpoint 0.78).
    pub bandwidth_utilization: f64,
    /// Network per-message latency α, seconds.
    pub net_latency: f64,
    /// Network injection bandwidth per node β, bytes/s.
    pub net_bandwidth: f64,
    /// Devices (MPI ranks) per node: 1 KNL, 2 K80 boards on Cooley, ...
    pub devices_per_node: u32,
    /// Fixed per-iteration overhead, seconds: solver vector updates,
    /// kernel launches / OpenMP synchronization, load imbalance. Dominates
    /// once per-device work shrinks (the strong-scaling floor).
    pub iteration_overhead: f64,
    /// Network congestion exponent γ: effective all-to-all bandwidth is
    /// `net_bandwidth / P^γ`. Dragonfly (Aries) topologies degrade slowly
    /// (γ ≈ 0.1); 3D-torus (Gemini) bisection limits bite hard at scale
    /// (γ ≈ 0.4) — the paper's "difference in network bandwidth and
    /// topology" (§4.3.3).
    pub congestion_exponent: f64,
    /// Whether kernels can execute out of the slow tier. True for KNL
    /// (DDR4 is directly addressable); false for the GPU machines, whose
    /// slow tier is host memory — working sets beyond device memory mean
    /// the problem "does not fit" (§4.1.3).
    pub slow_tier_executable: bool,
}

/// ALCF Theta: one 64-core KNL per node, 16 GB MCDRAM @ 400 GB/s,
/// 192 GB DDR4 @ 90 GB/s, Aries dragonfly.
pub const THETA: MachineSpec = MachineSpec {
    name: "Theta (KNL)",
    fast_capacity: 16e9,
    fast_bandwidth: 400e9,
    slow_capacity: 192e9,
    slow_bandwidth: 90e9,
    bandwidth_utilization: 0.78,
    net_latency: 3.0e-6,
    net_bandwidth: 8e9,
    devices_per_node: 1,
    iteration_overhead: 20.0e-3,
    congestion_exponent: 0.10,
    slow_tier_executable: true,
};

/// NCSA Blue Waters XK node: one K20X, 6 GB GDDR5 @ 121.5 GB/s (ECC
/// derated), 32 GB host over PCIe ~6 GB/s, Gemini torus.
pub const BLUE_WATERS: MachineSpec = MachineSpec {
    name: "Blue Waters (K20X)",
    fast_capacity: 6e9,
    fast_bandwidth: 121.5e9,
    slow_capacity: 32e9,
    slow_bandwidth: 6e9,
    bandwidth_utilization: 0.78,
    net_latency: 1.5e-6,
    net_bandwidth: 4.7e9,
    devices_per_node: 1,
    iteration_overhead: 15.0e-3,
    congestion_exponent: 0.40,
    slow_tier_executable: false,
};

/// ALCF Cooley: two K80 boards per node (each 12 GB @ 204 GB/s),
/// 384 GB host over PCIe, FDR InfiniBand.
pub const COOLEY: MachineSpec = MachineSpec {
    name: "Cooley (K80)",
    fast_capacity: 12e9,
    fast_bandwidth: 204e9,
    slow_capacity: 384e9,
    slow_bandwidth: 12e9,
    bandwidth_utilization: 0.78,
    net_latency: 2.0e-6,
    net_bandwidth: 6.8e9,
    devices_per_node: 2,
    iteration_overhead: 15.0e-3,
    congestion_exponent: 0.20,
    slow_tier_executable: false,
};

/// Per-iteration work volumes of the bottleneck rank (computed by the real
/// partitioner, not estimated).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelVolumes {
    /// FLOPs of the partial projections A_p and A_p^T (2 per nonzero,
    /// forward + backward).
    pub flops: f64,
    /// Regular bytes streamed (CSR ind+val, both directions).
    pub regular_bytes: f64,
    /// Irregular working-set bytes (input vector footprint).
    pub footprint_bytes: f64,
    /// Bytes this rank puts on the wire per iteration (C kernel).
    pub comm_bytes: f64,
    /// Number of peer ranks it exchanges with.
    pub comm_peers: f64,
    /// Bytes reduced after communication (R kernel).
    pub reduce_bytes: f64,
}

/// Modeled per-iteration kernel times, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelTimes {
    /// Partial forward+backprojection.
    pub ap: f64,
    /// Communication.
    pub c: f64,
    /// Overlap reduction.
    pub r: f64,
    /// Fixed per-iteration overhead (from [`MachineSpec::iteration_overhead`]).
    pub overhead: f64,
}

impl KernelTimes {
    /// Total iteration time.
    pub fn total(&self) -> f64 {
        self.ap + self.c + self.r + self.overhead
    }
}

/// Model one solver iteration on `spec` with `ranks` participating
/// devices, given the bottleneck rank's volumes. Returns `None` when the
/// per-device working set exceeds even the slow tier (the paper's "does
/// not fit" cases).
pub fn iteration_time(spec: &MachineSpec, v: &KernelVolumes, ranks: usize) -> Option<KernelTimes> {
    let working_set = v.regular_bytes + v.footprint_bytes;
    let bandwidth = if working_set <= spec.fast_capacity {
        spec.fast_bandwidth
    } else if spec.slow_tier_executable && working_set <= spec.slow_capacity {
        spec.slow_bandwidth
    } else {
        return None; // the paper's "does not fit" cases (§4.1.3)
    };
    let bw = bandwidth * spec.bandwidth_utilization;
    let ap = v.regular_bytes / bw;
    // All-to-all bandwidth degrades with scale per the topology's
    // congestion exponent.
    let net_bw = spec.net_bandwidth / (ranks.max(1) as f64).powf(spec.congestion_exponent);
    let c = v.comm_peers * spec.net_latency + v.comm_bytes / net_bw;
    // The reduction streams partials in and accumulates in place.
    let r = 3.0 * v.reduce_bytes / bw;
    Some(KernelTimes {
        ap,
        c,
        r,
        overhead: spec.iteration_overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volumes(regular_gb: f64) -> KernelVolumes {
        KernelVolumes {
            flops: regular_gb * 1e9 / 4.0,
            regular_bytes: regular_gb * 1e9,
            footprint_bytes: 0.1e9,
            comm_bytes: 1e6,
            comm_peers: 8.0,
            reduce_bytes: 1e6,
        }
    }

    #[test]
    fn mcdram_fit_is_faster_than_ddr() {
        // 10 GB fits MCDRAM; 100 GB spills to DDR at 90/400 the bandwidth.
        let fast = iteration_time(&THETA, &volumes(10.0), 1).unwrap();
        let slow = iteration_time(&THETA, &volumes(100.0), 1).unwrap();
        let per_byte_fast = fast.ap / 10.0;
        let per_byte_slow = slow.ap / 100.0;
        assert!(per_byte_slow / per_byte_fast > 4.0, "expected ~4.4x ratio");
    }

    #[test]
    fn superlinear_speedup_when_footprint_shrinks_below_fast_capacity() {
        // 8x more nodes => 1/8 the per-node volume: crossing the MCDRAM
        // boundary yields more than 8x per-iteration speedup (Table 5's
        // 19x on 8 nodes).
        let one_node = iteration_time(&THETA, &volumes(56.0), 1).unwrap();
        let eight_nodes = iteration_time(&THETA, &volumes(7.0), 8).unwrap();
        let speedup = one_node.ap / eight_nodes.ap;
        assert!(speedup > 8.0, "speedup {speedup}");
    }

    #[test]
    fn infeasible_when_exceeding_slow_tier() {
        assert!(iteration_time(&BLUE_WATERS, &volumes(50.0), 1).is_none());
        assert!(iteration_time(&THETA, &volumes(50.0), 1).is_some());
    }

    #[test]
    fn comm_time_has_latency_and_bandwidth_terms() {
        let mut v = volumes(1.0);
        v.comm_bytes = 0.0;
        v.comm_peers = 100.0;
        let lat_only = iteration_time(&THETA, &v, 1).unwrap();
        assert!((lat_only.c - 100.0 * THETA.net_latency).abs() < 1e-12);
        v.comm_peers = 0.0;
        v.comm_bytes = 8e9;
        let bw_only = iteration_time(&THETA, &v, 1).unwrap();
        assert!((bw_only.c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_constants_sane() {
        let specs = [THETA, COOLEY, BLUE_WATERS];
        assert_eq!(specs[0].devices_per_node, 1);
        assert_eq!(specs[1].devices_per_node, 2);
        assert!(specs[2].fast_bandwidth < specs[1].fast_bandwidth);
        assert!(specs[0].fast_bandwidth > specs[1].fast_bandwidth);
    }

    #[test]
    fn kernel_times_total() {
        let t = KernelTimes {
            ap: 1.0,
            c: 2.0,
            r: 3.0,
            overhead: 0.5,
        };
        assert_eq!(t.total(), 6.5);
    }
}

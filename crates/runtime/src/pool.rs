//! Persistent worker pool and static, nnz-balanced execution plans.
//!
//! MemXCT load-balances row partitions by nonzero count and keeps threads
//! pinned on contiguous Hilbert-ordered partitions across all iterations
//! (§3.2, §4.2). This module is the in-node half of that idea:
//!
//! - [`WorkerPool`] spawns its workers **once** and parks them on a
//!   condvar between dispatches. A dispatch publishes one job under the
//!   pool mutex, bumps an epoch, and wakes everyone; the caller (who acts
//!   as worker 0) blocks until the remaining-worker count drains to zero.
//!   Steady-state dispatch is therefore a couple of condvar signals — no
//!   thread spawns, no heap allocation.
//! - [`ExecPlan`] is the static partitioning: a greedy prefix split over
//!   a weight prefix sum (the CSR `rowptr` for row kernels, per-block
//!   footprints for buffered/ELL layouts) computed once at plan time and
//!   reused every iteration. Each worker owns one contiguous run of
//!   partitions, so output slices are disjoint and per-row accumulation
//!   order — and hence the floating-point result — is independent of the
//!   worker count.
//!
//! [`WorkerPool::run`] combines the two: it hands each worker the
//! disjoint sub-slice of the output selected by the plan plus a
//! persistent per-worker scratch buffer (grown on first use, reused
//! forever after).

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use xct_model::sync::atomic::{AtomicU64, Ordering};
use xct_model::sync::{Arc, Condvar, Mutex};
use xct_model::thread;
use xct_model::time::Instant;
use xct_obs::Metrics;

/// Timer metric: wall time of one pool dispatch (publish → all workers
/// done), in seconds.
pub const POOL_DISPATCH_SECONDS: &str = "pool/dispatch_s";
/// Gauge metric: busy-time utilization of the last dispatch
/// (`Σ worker busy / (wall × workers)`), in `[0, 1]`.
pub const POOL_UTILIZATION: &str = "pool/utilization";
/// Counter metric: number of dispatches the pool has run.
pub const POOL_DISPATCHES: &str = "pool/dispatches";
/// Gauge metric: number of workers in the pool (including the caller).
pub const POOL_WORKERS: &str = "pool/workers";

/// A static assignment of `rows` domain elements to pool workers.
///
/// The domain is first tiled by `bounds` into contiguous partitions
/// (partition `p` covers `bounds[p]..bounds[p + 1]`), each carrying a
/// `weights[p]` cost; `assign` then gives each worker one contiguous run
/// of partitions (`assign[w]..assign[w + 1]`). Both levels are built by a
/// greedy prefix split, so every worker's total weight is at most
/// `total/W + max_unit + 1` where `max_unit` is the largest indivisible
/// unit (one row for row plans, one block for block plans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPlan {
    rows: usize,
    bounds: Vec<usize>,
    weights: Vec<u64>,
    assign: Vec<usize>,
    max_unit: u64,
}

/// Greedy prefix split of `prefix` (a cumulative weight array with a
/// leading 0) into `parts` contiguous runs: cut `k` is the first index
/// whose prefix reaches `k/parts` of the total.
fn prefix_cuts(prefix: &[usize], parts: usize) -> Vec<usize> {
    let n = prefix.len() - 1;
    let total = prefix[n] as u128;
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0usize);
    for k in 1..parts {
        let target = (total * k as u128 / parts as u128) as usize;
        let cut = prefix.partition_point(|&w| w < target.max(1));
        // Clamp: cuts must stay monotone and leave room for later parts.
        cuts.push(cut.min(n).max(cuts[k - 1]));
    }
    cuts.push(n);
    cuts
}

impl ExecPlan {
    /// An nnz-balanced row plan: split rows so each worker's nonzero
    /// count is near `nnz/W`, via a greedy prefix split over the CSR
    /// `rowptr` (which *is* the nnz prefix sum). One partition per
    /// worker.
    ///
    /// # Panics
    /// If `rowptr` is empty or `workers` is zero.
    pub fn nnz_balanced(rowptr: &[usize], workers: usize) -> ExecPlan {
        assert!(!rowptr.is_empty(), "rowptr must have a leading 0");
        assert!(workers > 0, "need at least one worker");
        let n = rowptr.len() - 1;
        let bounds = prefix_cuts(rowptr, workers);
        let weights = bounds
            .windows(2)
            .map(|w| (rowptr[w[1]] - rowptr[w[0]]) as u64)
            .collect();
        let max_unit = (0..n)
            .map(|i| (rowptr[i + 1] - rowptr[i]) as u64)
            .max()
            .unwrap_or(0);
        ExecPlan {
            rows: n,
            bounds,
            weights,
            assign: (0..=workers).collect(),
            max_unit,
        }
    }

    /// A plan over pre-existing blocks (buffered partitions, ELL
    /// partitions): block `p` covers rows `block_bounds[p]..block_bounds
    /// [p + 1]` at cost `block_weights[p]`, and workers get contiguous
    /// block runs balanced by a greedy prefix split over the block
    /// weights.
    ///
    /// # Panics
    /// If the bounds array is empty, lengths disagree, or `workers` is
    /// zero.
    pub fn balanced_blocks(
        block_bounds: &[usize],
        block_weights: &[u64],
        workers: usize,
    ) -> ExecPlan {
        assert!(!block_bounds.is_empty(), "bounds must have a leading 0");
        assert_eq!(
            block_weights.len(),
            block_bounds.len() - 1,
            "one weight per block"
        );
        assert!(workers > 0, "need at least one worker");
        assert_eq!(block_bounds[0], 0, "block bounds must start at 0");
        assert!(
            block_bounds.windows(2).all(|w| w[0] <= w[1]),
            "block bounds must be monotone"
        );
        let nblocks = block_weights.len();
        let mut prefix = Vec::with_capacity(nblocks + 1);
        prefix.push(0usize);
        let mut acc = 0usize;
        for &w in block_weights {
            acc += w as usize;
            prefix.push(acc);
        }
        ExecPlan {
            rows: *block_bounds.last().unwrap_or(&0),
            bounds: block_bounds.to_vec(),
            weights: block_weights.to_vec(),
            assign: prefix_cuts(&prefix, workers),
            max_unit: block_weights.iter().copied().max().unwrap_or(0),
        }
    }

    /// The baseline strategy: equal row counts per worker, ignoring nnz.
    ///
    /// # Panics
    /// If `workers` is zero.
    pub fn equal_rows(rows: usize, workers: usize) -> ExecPlan {
        assert!(workers > 0, "need at least one worker");
        let bounds: Vec<usize> = (0..=workers).map(|k| rows * k / workers).collect();
        let weights = bounds.windows(2).map(|w| (w[1] - w[0]) as u64).collect();
        ExecPlan {
            rows,
            bounds,
            weights,
            assign: (0..=workers).collect(),
            max_unit: 1,
        }
    }

    /// Rebuild a plan from raw arrays **without validation** — for
    /// mutation tests and checkers that need to construct malformed
    /// plans. [`WorkerPool::run`] hard-asserts
    /// [`ExecPlan::is_well_formed`] before trusting a plan, so a
    /// malformed one built here panics at dispatch instead of causing
    /// unsound slicing.
    pub fn from_raw_parts_unchecked(
        rows: usize,
        bounds: Vec<usize>,
        weights: Vec<u64>,
        assign: Vec<usize>,
        max_unit: u64,
    ) -> ExecPlan {
        ExecPlan {
            rows,
            bounds,
            weights,
            assign,
            max_unit,
        }
    }

    /// Total number of domain elements (rows) the plan covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of workers the plan was built for.
    pub fn num_workers(&self) -> usize {
        self.assign.len().saturating_sub(1)
    }

    /// Number of contiguous partitions.
    pub fn num_partitions(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Partition boundaries (`num_partitions() + 1` entries, first 0,
    /// last [`ExecPlan::rows`]).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Per-partition weights (nnz or block footprints).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Worker → partition-run boundaries (`num_workers() + 1` entries).
    pub fn assign(&self) -> &[usize] {
        &self.assign
    }

    /// The largest indivisible unit weight (bounds the balance error).
    pub fn max_unit_weight(&self) -> u64 {
        self.max_unit
    }

    /// Sum of all partition weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// The contiguous partition run owned by worker `w`.
    pub fn worker_parts(&self, w: usize) -> Range<usize> {
        self.assign[w]..self.assign[w + 1]
    }

    /// The contiguous row range owned by worker `w`.
    pub fn worker_rows(&self, w: usize) -> Range<usize> {
        self.bounds[self.assign[w]]..self.bounds[self.assign[w + 1]]
    }

    /// Total weight assigned to worker `w`.
    pub fn worker_weight(&self, w: usize) -> u64 {
        self.weights[self.worker_parts(w)].iter().sum()
    }

    /// Load imbalance: the heaviest worker's weight over the ideal
    /// `total/W` share (1.0 = perfectly balanced; 0 total ⇒ 1.0).
    pub fn imbalance(&self) -> f64 {
        let total = self.total_weight();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.num_workers() as f64;
        let max = (0..self.num_workers())
            .map(|w| self.worker_weight(w))
            .max()
            .unwrap_or(0);
        max as f64 / ideal
    }

    /// The guaranteed per-worker weight bound of the greedy split:
    /// `⌊total/W⌋ + max_unit + 1`. Checkers flag plans whose heaviest
    /// worker exceeds this.
    pub fn balance_bound(&self) -> u64 {
        let w = self.num_workers().max(1) as u64;
        self.total_weight() / w + self.max_unit + 1
    }

    /// Structural well-formedness: both boundary arrays start at 0, end
    /// at their domain size, and are monotone. `WorkerPool::run` asserts
    /// this before trusting the plan for disjoint slicing.
    pub fn is_well_formed(&self) -> bool {
        let bounds_ok = self.bounds.first() == Some(&0)
            && self.bounds.last() == Some(&self.rows)
            && self.bounds.windows(2).all(|w| w[0] <= w[1])
            && self.weights.len() + 1 == self.bounds.len();
        let assign_ok = self.assign.first() == Some(&0)
            && self.assign.last() == Some(&self.num_partitions())
            && self.assign.windows(2).all(|w| w[0] <= w[1]);
        bounds_ok && assign_ok
    }
}

/// The job pointer workers execute: a borrowed closure with its lifetime
/// erased so it can sit in the shared dispatch state.
type Job = dyn Fn(usize, &mut Vec<f32>) + Sync;

#[derive(Clone, Copy)]
struct JobPtr(*const Job);

// The pointee is a closure on the dispatching thread's stack, and the
// closure is `Sync`, so shared calls from worker threads are fine.
// SAFETY: `broadcast` does not return until every worker is done with
// the pointer (the remaining-count drains to zero under the pool mutex).
unsafe impl Send for JobPtr {}

struct DispatchState {
    epoch: u64,
    job: Option<JobPtr>,
    remaining: usize,
    timed: bool,
    shutdown: bool,
    /// First panic payload caught on a worker during the current
    /// dispatch; the dispatcher re-raises it after the barrier drains.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    state: Mutex<DispatchState>,
    work_cv: Condvar,
    done_cv: Condvar,
    busy_ns: Vec<AtomicU64>,
}

/// A dispatch was refused because a previous panic unwound through one of
/// the pool's internal locks while it was held, so the dispatch state may
/// be inconsistent (a half-published job, a stale remaining-count).
///
/// Kernel panics do **not** poison the pool — they are caught, the
/// barrier drains, and the payload is re-raised after the dispatch lock
/// is released. Poisoning only arises when pool-internal code itself
/// unwinds mid-critical-section, which is a pool bug or a torn-down
/// process; [`WorkerPool::clear_poison`] is the explicit opt-back-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolPoisoned {
    lock: &'static str,
}

impl PoolPoisoned {
    /// Name of the poisoned lock class (`pool/state`, `pool/dispatch` or
    /// `pool/scratch`).
    pub fn lock_name(&self) -> &'static str {
        self.lock
    }
}

impl std::fmt::Display for PoolPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker pool poisoned: a panic unwound through the '{}' lock while it was held, \
             so the dispatch state may be inconsistent; drop and rebuild the pool, or call \
             WorkerPool::clear_poison() if the state is known good",
            self.lock
        )
    }
}

impl std::error::Error for PoolPoisoned {}

/// A pool of `threads` persistent workers (worker 0 is the calling
/// thread; `threads - 1` parked worker threads). Workers are spawned at
/// construction and live until the pool is dropped; a dispatch costs two
/// condvar signals instead of `threads` spawns.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    threads: usize,
    /// Serializes whole dispatches: `run`/`run_with_scratch` take `&self`
    /// and the pool is `Sync`, but only one job may be in flight at a
    /// time — `DispatchState` (job/remaining/epoch) is single-shot.
    dispatch_lock: Mutex<()>,
    main_scratch: Mutex<Vec<f32>>,
    metrics: Metrics,
}

impl WorkerPool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::with_metrics(threads, Metrics::noop())
    }

    /// A pool sized like the rayon shim: `RAYON_NUM_THREADS` if set and
    /// positive, else the available parallelism. The environment is read
    /// once, here — the pool size is fixed for its lifetime.
    pub fn from_env() -> WorkerPool {
        WorkerPool::new(env_threads())
    }

    /// A pool that reports dispatch latency and utilization through
    /// `metrics` (`pool/*` names).
    pub fn with_metrics(threads: usize, metrics: Metrics) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::named(
                "pool/state",
                DispatchState {
                    epoch: 0,
                    job: None,
                    remaining: 0,
                    timed: false,
                    shutdown: false,
                    panic: None,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("xct-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        metrics.gauge_set(POOL_WORKERS, threads as f64);
        WorkerPool {
            shared,
            handles,
            threads,
            dispatch_lock: Mutex::named("pool/dispatch", ()),
            main_scratch: Mutex::named("pool/scratch", Vec::new()),
            metrics,
        }
    }

    /// `Ok` when no internal lock is poisoned; the typed
    /// [`PoolPoisoned`] error otherwise. `run*` calls this implicitly
    /// (panicking with the same message); `try_run*` surface it.
    pub fn check_healthy(&self) -> Result<(), PoolPoisoned> {
        let lock = if self.shared.state.is_poisoned() {
            "pool/state"
        } else if self.dispatch_lock.is_poisoned() {
            "pool/dispatch"
        } else if self.main_scratch.is_poisoned() {
            "pool/scratch"
        } else {
            return Ok(());
        };
        Err(PoolPoisoned { lock })
    }

    /// Clear all internal poison flags, declaring the dispatch state
    /// sound again. Explicit recovery only — nothing clears poison
    /// implicitly.
    pub fn clear_poison(&self) {
        self.shared.state.clear_poison();
        self.dispatch_lock.clear_poison();
        self.main_scratch.clear_poison();
    }

    /// Poison the pool's state lock the way a mid-critical-section panic
    /// would. Test hook for the poisoning regression tests.
    #[doc(hidden)]
    pub fn poison_for_test(&self) {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = self.shared.state.lock();
            panic!("poison_for_test");
        }));
    }

    /// Number of workers (including the calling thread).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Run `kernel` over the disjoint output slices selected by `plan`.
    ///
    /// Each worker `w` receives its partition run `plan.worker_parts(w)`,
    /// its row range `plan.worker_rows(w)`, and `&mut out[rows]` — the
    /// sub-slice it exclusively owns. The caller participates as worker
    /// 0 and the call returns only when every worker has finished, so
    /// borrowed captures in `kernel` stay valid throughout.
    ///
    /// Dispatches are serialized: if another thread is mid-`run` on the
    /// same pool, this call blocks until that dispatch completes.
    ///
    /// # Panics
    /// If `out.len() != plan.rows()`, the plan's worker count differs
    /// from the pool's, or the plan is not well-formed. A panic in
    /// `kernel` (on any worker) is re-raised on the calling thread after
    /// all workers finish; the pool remains usable.
    pub fn run<T, K>(&self, plan: &ExecPlan, out: &mut [T], kernel: K)
    where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, &mut [T]) + Sync,
    {
        self.try_run(plan, out, kernel)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`WorkerPool::run`] with poisoning surfaced as a typed error
    /// instead of a panic: refuses the dispatch with [`PoolPoisoned`]
    /// when a previous panic corrupted the pool's internal locks.
    pub fn try_run<T, K>(
        &self,
        plan: &ExecPlan,
        out: &mut [T],
        kernel: K,
    ) -> Result<(), PoolPoisoned>
    where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, &mut [T]) + Sync,
    {
        self.try_run_with_scratch(plan, out, |parts, rows, slice, _scratch| {
            kernel(parts, rows, slice)
        })
    }

    /// Like [`WorkerPool::run`], additionally handing each worker its
    /// persistent `Vec<f32>` scratch buffer (kept across dispatches, so
    /// a kernel that `resize`s it to a fixed footprint allocates only on
    /// the first call).
    pub fn run_with_scratch<T, K>(&self, plan: &ExecPlan, out: &mut [T], kernel: K)
    where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, &mut [T], &mut Vec<f32>) + Sync,
    {
        self.try_run_with_scratch(plan, out, kernel)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`WorkerPool::run_with_scratch`] with poisoning surfaced as a
    /// typed [`PoolPoisoned`] error instead of a panic.
    pub fn try_run_with_scratch<T, K>(
        &self,
        plan: &ExecPlan,
        out: &mut [T],
        kernel: K,
    ) -> Result<(), PoolPoisoned>
    where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, &mut [T], &mut Vec<f32>) + Sync,
    {
        self.check_healthy()?;
        assert_eq!(out.len(), plan.rows(), "output length vs plan rows");
        assert_eq!(
            plan.num_workers(),
            self.threads,
            "plan worker count vs pool size"
        );
        // Hard assert (not debug-only): the disjoint-slice carving below
        // is unsound for a malformed plan, and malformed plans are
        // constructible from safe code (`from_raw_parts_unchecked`). The
        // check is O(partitions) — negligible next to a dispatch.
        assert!(plan.is_well_formed(), "malformed ExecPlan");
        let base = OutPtr(out.as_mut_ptr());
        let job = |w: usize, scratch: &mut Vec<f32>| {
            let parts = plan.worker_parts(w);
            let rows = plan.worker_rows(w);
            // SAFETY: a well-formed plan's worker row ranges (asserted above) are
            // in-bounds and pairwise disjoint: an exclusive sub-slice per worker.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(rows.start), rows.len()) };
            kernel(parts, rows, slice, scratch);
        };
        self.broadcast(&job, true);
        Ok(())
    }

    /// Dispatch **without** taking the dispatch lock. This is the exact
    /// PR 4 bug class (concurrent `run(&self)` on a shared pool racing
    /// the single `DispatchState`), deliberately kept as a mutated
    /// protocol so the `xct-model` regression suite can prove the checker
    /// catches it (see `crates/runtime/tests/model_check.rs`). Never call
    /// this outside that suite.
    #[doc(hidden)]
    pub fn run_unserialized_for_model<T, K>(&self, plan: &ExecPlan, out: &mut [T], kernel: K)
    where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, &mut [T]) + Sync,
    {
        assert_eq!(out.len(), plan.rows(), "output length vs plan rows");
        assert_eq!(
            plan.num_workers(),
            self.threads,
            "plan worker count vs pool size"
        );
        assert!(plan.is_well_formed(), "malformed ExecPlan");
        let base = OutPtr(out.as_mut_ptr());
        let job = |w: usize, scratch: &mut Vec<f32>| {
            let parts = plan.worker_parts(w);
            let rows = plan.worker_rows(w);
            // SAFETY: same disjoint carving as `try_run_with_scratch` (plan
            // asserted well-formed; the seeded bug is the dispatch protocol).
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(rows.start), rows.len()) };
            kernel(parts, rows, slice);
            let _ = scratch;
        };
        self.broadcast(&job, false);
    }

    /// Run `kernel` over a slice-major **batched** output: `out` holds
    /// `blocks` contiguous blocks of `plan.rows()` elements each (block
    /// `b` occupies `out[b * rows .. (b + 1) * rows]`), and each worker
    /// receives a [`BatchOut`] view granting exclusive access to its
    /// plan-assigned row range within *every* block. This is the dispatch
    /// shape of SpMM (`A · [x₁ … xₖ]`): one job streams the worker's
    /// matrix partition once while touching its row range of all `k`
    /// output blocks.
    ///
    /// # Panics
    /// If `blocks == 0`, `out.len() != plan.rows() * blocks`, the plan's
    /// worker count differs from the pool's, or the plan is not
    /// well-formed. Kernel panics propagate as in [`WorkerPool::run`].
    pub fn run_batched<T, K>(&self, plan: &ExecPlan, out: &mut [T], blocks: usize, kernel: K)
    where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, BatchOut<'_, T>) + Sync,
    {
        self.try_run_batched(plan, out, blocks, kernel)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`WorkerPool::run_batched`] with poisoning surfaced as a typed
    /// [`PoolPoisoned`] error instead of a panic.
    pub fn try_run_batched<T, K>(
        &self,
        plan: &ExecPlan,
        out: &mut [T],
        blocks: usize,
        kernel: K,
    ) -> Result<(), PoolPoisoned>
    where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, BatchOut<'_, T>) + Sync,
    {
        self.try_run_batched_with_scratch(plan, out, blocks, |parts, rows, view, _scratch| {
            kernel(parts, rows, view)
        })
    }

    /// Like [`WorkerPool::run_batched`], additionally handing each worker
    /// its persistent `Vec<f32>` scratch buffer (kept across dispatches,
    /// as in [`WorkerPool::run_with_scratch`]).
    pub fn run_batched_with_scratch<T, K>(
        &self,
        plan: &ExecPlan,
        out: &mut [T],
        blocks: usize,
        kernel: K,
    ) where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, BatchOut<'_, T>, &mut Vec<f32>) + Sync,
    {
        self.try_run_batched_with_scratch(plan, out, blocks, kernel)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`WorkerPool::run_batched_with_scratch`] with poisoning surfaced
    /// as a typed [`PoolPoisoned`] error instead of a panic.
    pub fn try_run_batched_with_scratch<T, K>(
        &self,
        plan: &ExecPlan,
        out: &mut [T],
        blocks: usize,
        kernel: K,
    ) -> Result<(), PoolPoisoned>
    where
        T: Send,
        K: Fn(Range<usize>, Range<usize>, BatchOut<'_, T>, &mut Vec<f32>) + Sync,
    {
        self.check_healthy()?;
        assert!(blocks > 0, "batched dispatch needs at least one block");
        assert_eq!(
            out.len(),
            plan.rows() * blocks,
            "output length vs plan rows × blocks"
        );
        assert_eq!(
            plan.num_workers(),
            self.threads,
            "plan worker count vs pool size"
        );
        // Hard assert, as in `run_with_scratch`: the per-block slice
        // carving in `BatchOut::block` is unsound for a malformed plan.
        assert!(plan.is_well_formed(), "malformed ExecPlan");
        let base = OutPtr(out.as_mut_ptr());
        let domain = plan.rows();
        let job = |w: usize, scratch: &mut Vec<f32>| {
            let parts = plan.worker_parts(w);
            let rows = plan.worker_rows(w);
            let view = BatchOut {
                base: base.get(),
                domain,
                rows: rows.clone(),
                blocks,
                _marker: std::marker::PhantomData,
            };
            kernel(parts, rows, view, scratch);
        };
        self.broadcast(&job, true);
        Ok(())
    }

    /// Publish `job`, run worker 0's share inline, and wait for the rest.
    ///
    /// With `serialize`, whole dispatches are serialized by
    /// `dispatch_lock`: the pool is `Sync` and `run` takes `&self`, so
    /// without it two concurrent callers would race on the single
    /// `DispatchState` — one could return while workers still hold the
    /// other's lifetime-erased job pointer. (`serialize = false` exists
    /// only for [`WorkerPool::run_unserialized_for_model`], the seeded
    /// bug the model checker must catch.)
    ///
    /// A panicking kernel (on any worker, including the caller) is
    /// caught, the barrier still drains, and the first panic payload is
    /// re-raised here — *after* every internal guard is released, so the
    /// pool stays usable (and unpoisoned) for later dispatches.
    fn broadcast(&self, job: &(dyn Fn(usize, &mut Vec<f32>) + Sync), serialize: bool) {
        let (main_panic, worker_panic) = {
            let _dispatch = serialize.then(|| self.dispatch_lock.lock());
            self.broadcast_locked(job)
        };
        // Both guards (dispatch + scratch) are released here: re-raising
        // a kernel panic must not unwind through a held pool lock.
        if let Some(payload) = main_panic {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// The dispatch body; returns caught (caller, worker) panic payloads
    /// instead of re-raising so the caller can drop guards first.
    #[allow(clippy::type_complexity)]
    fn broadcast_locked(
        &self,
        job: &(dyn Fn(usize, &mut Vec<f32>) + Sync),
    ) -> (
        Option<Box<dyn std::any::Any + Send>>,
        Option<Box<dyn std::any::Any + Send>>,
    ) {
        let timed = self.metrics.enabled();
        let started = if timed { Some(Instant::now()) } else { None };
        if self.handles.is_empty() {
            let main_result = {
                let mut scratch = self.main_scratch.lock();
                catch_unwind(AssertUnwindSafe(|| job(0, &mut scratch)))
            };
            if let Some(t) = started {
                self.shared.busy_ns[0].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            self.finish_metrics(started, 1);
            return (main_result.err(), None);
        }
        // SAFETY: only the borrow lifetime is erased; `broadcast_locked`
        // blocks below until `remaining == 0` (every worker done with the
        // pointer) before returning control to the closure's owner.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize, &mut Vec<f32>) + Sync), *const Job>(job)
        });
        {
            let mut st = self.shared.state.lock();
            if timed {
                for b in &self.shared.busy_ns {
                    b.store(0, Ordering::Relaxed);
                }
            }
            st.job = Some(ptr);
            st.timed = timed;
            st.remaining = self.threads - 1;
            st.epoch += 1;
        }
        // Notify after unlocking so woken workers don't immediately block
        // on the still-held dispatch mutex.
        self.shared.work_cv.notify_all();
        // Catch a caller-side kernel panic so we still wait for the
        // workers below — unwinding past the barrier would free the
        // closure while workers may still be executing it.
        let main_result = {
            let main_started = timed.then(Instant::now);
            let mut scratch = self.main_scratch.lock();
            let r = catch_unwind(AssertUnwindSafe(|| job(0, &mut scratch)));
            if let Some(t) = main_started {
                self.shared.busy_ns[0].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            r
        };
        let mut st = self.shared.state.lock();
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st);
        }
        st.job = None;
        let worker_panic = st.panic.take();
        drop(st);
        self.finish_metrics(started, self.threads);
        (main_result.err(), worker_panic)
    }

    fn finish_metrics(&self, started: Option<Instant>, workers: usize) {
        let Some(t) = started else { return };
        let wall = t.elapsed().as_secs_f64();
        self.metrics.timer_observe(POOL_DISPATCH_SECONDS, wall);
        self.metrics.counter_add(POOL_DISPATCHES, 1);
        let busy: u64 = self.shared.busy_ns[..workers]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        if wall > 0.0 {
            let util = (busy as f64 / 1e9) / (wall * workers as f64);
            self.metrics.gauge_set(POOL_UTILIZATION, util.min(1.0));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The pool thread count the environment asks for: `RAYON_NUM_THREADS`
/// when set to a positive integer, else available parallelism.
pub fn env_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn worker_loop(shared: &Shared, w: usize) {
    let mut scratch: Vec<f32> = Vec::new();
    let mut seen = 0u64;
    loop {
        let (job, epoch, timed) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    Some(job) if st.epoch != seen => break (job, st.epoch, st.timed),
                    _ => {}
                }
                st = shared.work_cv.wait(st);
            }
        };
        seen = epoch;
        let started = timed.then(Instant::now);
        // SAFETY: see `JobPtr` — the dispatcher keeps the closure alive
        // until this worker decrements `remaining` below.
        let f = unsafe { &*job.0 };
        // Catch kernel panics: `remaining` must drain even on failure or
        // the dispatcher waits on `done_cv` forever. The payload is
        // stashed for the dispatcher to re-raise; this worker keeps
        // serving later dispatches.
        let result = catch_unwind(AssertUnwindSafe(|| f(w, &mut scratch)));
        if let Some(t) = started {
            shared.busy_ns[w].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let last = {
            let mut st = shared.state.lock();
            if let Err(payload) = result {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            // A checked decrement, not `-= 1`: an underflow here means the
            // dispatch protocol itself was violated (a second job was
            // published while this one was draining — the PR 4 bug class),
            // and the model checker keys on this panic.
            st.remaining = st
                .remaining
                .checked_sub(1)
                .expect("pool protocol violation: remaining-worker count underflow (concurrent unserialized dispatch)");
            st.remaining == 0
        };
        // Signal outside the lock: the dispatcher wakes without having to
        // wait for this worker to release the mutex.
        if last {
            shared.done_cv.notify_one();
        }
    }
}

/// A worker's exclusive window into a slice-major batched output during a
/// [`WorkerPool::run_batched`] dispatch: the output holds `blocks` blocks
/// of `domain` elements each, and this view owns the row range `rows`
/// within every block. [`BatchOut::block`] yields one block's sub-slice at
/// a time; the `&mut self` receiver serializes access within the worker,
/// and the plan's pairwise-disjoint worker row ranges keep workers apart.
pub struct BatchOut<'a, T> {
    base: *mut T,
    domain: usize,
    rows: Range<usize>,
    blocks: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<T> BatchOut<'_, T> {
    /// Number of blocks (the batch width `k`).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The row range this view owns within every block.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// This worker's row range within block `b` (its exclusive sub-slice
    /// of `out[b * domain .. (b + 1) * domain]`).
    ///
    /// # Panics
    /// If `b >= self.blocks()`.
    pub fn block(&mut self, b: usize) -> &mut [T] {
        assert!(b < self.blocks, "block index out of range");
        // The dispatch asserted `out.len() == domain * blocks` and plan
        // well-formedness, so `b * domain + rows` is in bounds; worker
        // row ranges are pairwise disjoint (no cross-worker overlap).
        // SAFETY: in-bounds and disjoint per the above, and the `&mut
        // self` receiver ties the returned borrow to this view, so a
        // worker never holds two overlapping slices at once.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.base.add(b * self.domain + self.rows.start),
                self.rows.len(),
            )
        }
    }
}

struct OutPtr<T>(*mut T);

impl<T> OutPtr<T> {
    // A method (rather than direct field access) so closures capture the
    // whole wrapper — and with it the Send/Sync reasoning below — instead
    // of disjointly capturing the bare raw pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the pointer is only dereferenced inside `run_with_scratch`'s
// job, where each worker derives a disjoint sub-slice from it, so no
// two threads ever touch overlapping elements.
unsafe impl<T: Send> Send for OutPtr<T> {}
// SAFETY: same argument — workers share `OutPtr` by reference but
// every dereference targets a worker-exclusive range.
unsafe impl<T: Send> Sync for OutPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nnz_balanced_covers_and_balances() {
        // Rows with wildly uneven nnz: 100, 1, 1, 1, 100, 1, 1, 1.
        let nnz = [100usize, 1, 1, 1, 100, 1, 1, 1];
        let mut rowptr = vec![0usize];
        for n in nnz {
            rowptr.push(rowptr.last().unwrap() + n);
        }
        let plan = ExecPlan::nnz_balanced(&rowptr, 2);
        assert!(plan.is_well_formed());
        assert_eq!(plan.rows(), 8);
        assert_eq!(plan.num_workers(), 2);
        assert_eq!(plan.total_weight(), 206);
        // Greedy guarantee: no worker above total/W + max_unit + 1.
        for w in 0..2 {
            assert!(plan.worker_weight(w) <= plan.balance_bound());
        }
        // Equal-rows would put 202 nnz on worker 0; the greedy split
        // lands on a perfect 103/103.
        assert_eq!(plan.worker_weight(0), 103);
        assert_eq!(plan.worker_weight(1), 103);
        assert!((plan.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plans_degrade_gracefully() {
        // More workers than rows: trailing workers own empty ranges.
        let plan = ExecPlan::nnz_balanced(&[0, 2, 4, 6], 8);
        assert!(plan.is_well_formed());
        assert_eq!(plan.num_workers(), 8);
        let covered: usize = (0..8).map(|w| plan.worker_rows(w).len()).sum();
        assert_eq!(covered, 3);
        // Empty domain.
        let plan = ExecPlan::equal_rows(0, 4);
        assert!(plan.is_well_formed());
        assert_eq!(plan.total_weight(), 0);
        assert_eq!(plan.imbalance(), 1.0);
        // Empty-row matrix (all-zero rowptr deltas in the middle).
        let plan = ExecPlan::nnz_balanced(&[0, 3, 3, 3, 6], 2);
        assert!(plan.is_well_formed());
        assert_eq!(plan.worker_weight(0) + plan.worker_weight(1), 6);
    }

    #[test]
    fn balanced_blocks_assigns_contiguous_runs() {
        let bounds = [0usize, 4, 8, 12, 16];
        let weights = [10u64, 1, 1, 10];
        let plan = ExecPlan::balanced_blocks(&bounds, &weights, 2);
        assert!(plan.is_well_formed());
        assert_eq!(plan.num_partitions(), 4);
        assert_eq!(plan.worker_weight(0) + plan.worker_weight(1), 22);
        for w in 0..2 {
            assert!(plan.worker_weight(w) <= plan.balance_bound());
        }
    }

    #[test]
    fn pool_runs_disjoint_slices_and_reuses_workers() {
        let pool = WorkerPool::new(4);
        let plan = ExecPlan::equal_rows(103, 4);
        let mut out = vec![0u32; 103];
        // Two dispatches on the same pool: results must reflect the
        // second job everywhere (workers are re-used, not respawned).
        for round in 1..=2u32 {
            pool.run(&plan, &mut out, |_parts, rows, slice| {
                for (j, v) in slice.iter_mut().enumerate() {
                    *v = (rows.start + j) as u32 * round;
                }
            });
        }
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u32 * 2);
        }
    }

    #[test]
    fn pool_scratch_persists_across_dispatches() {
        let pool = WorkerPool::new(3);
        let plan = ExecPlan::equal_rows(30, 3);
        let mut out = vec![0f32; 30];
        pool.run_with_scratch(&plan, &mut out, |_p, _r, _s, scratch| {
            scratch.resize(16, 7.0);
        });
        pool.run_with_scratch(&plan, &mut out, |_p, _r, slice, scratch| {
            // Scratch kept its contents from the previous dispatch.
            slice.fill(scratch.first().copied().unwrap_or(0.0));
        });
        assert!(out.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn batched_dispatch_matches_per_block_runs() {
        let plan = ExecPlan::nnz_balanced(&[0, 5, 6, 7, 107, 108, 110], 3);
        let pool = WorkerPool::new(3);
        let rows = plan.rows();
        let blocks = 4;
        let mut batched = vec![0u32; rows * blocks];
        pool.run_batched(&plan, &mut batched, blocks, |_parts, rows, mut out| {
            assert_eq!(out.blocks(), blocks);
            for b in 0..out.blocks() {
                let slice = out.block(b);
                for (j, v) in slice.iter_mut().enumerate() {
                    *v = ((rows.start + j) * 10 + b) as u32;
                }
            }
        });
        for b in 0..blocks {
            for i in 0..rows {
                assert_eq!(batched[b * rows + i], (i * 10 + b) as u32);
            }
        }
    }

    #[test]
    fn batched_dispatch_rejects_bad_shapes() {
        let plan = ExecPlan::equal_rows(16, 2);
        let pool = WorkerPool::new(2);
        let mut out = vec![0f32; 16];
        assert!(catch_unwind(AssertUnwindSafe(|| {
            pool.run_batched(&plan, &mut out, 0, |_p, _r, _o| {});
        }))
        .is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| {
            // 16 elements is one block short of blocks=2.
            pool.run_batched(&plan, &mut out, 2, |_p, _r, _o| {});
        }))
        .is_err());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let plan = ExecPlan::nnz_balanced(&[0, 1, 2, 3], 1);
        let mut out = vec![0f32; 3];
        pool.run(&plan, &mut out, |parts, rows, slice| {
            assert_eq!(parts, 0..1);
            assert_eq!(rows, 0..3);
            slice.fill(1.0);
        });
        assert_eq!(out, vec![1.0; 3]);
    }

    #[test]
    fn concurrent_dispatches_are_serialized() {
        // Two threads hammer run() on one shared pool; the dispatch lock
        // must keep each job's barrier intact, so every element of both
        // outputs reflects its own closure (no cross-talk, no deadlock,
        // no underflow).
        let pool = std::sync::Arc::new(WorkerPool::new(4));
        let plan = ExecPlan::equal_rows(257, 4);
        let mut joins = Vec::new();
        for tag in 1..=2u32 {
            let pool = std::sync::Arc::clone(&pool);
            let plan = plan.clone();
            joins.push(std::thread::spawn(move || {
                let mut out = vec![0u32; 257];
                for _ in 0..50 {
                    out.fill(0);
                    pool.run(&plan, &mut out, |_p, rows, slice| {
                        for (j, v) in slice.iter_mut().enumerate() {
                            *v = (rows.start + j) as u32 * 10 + tag;
                        }
                    });
                    for (i, &v) in out.iter().enumerate() {
                        assert_eq!(v, i as u32 * 10 + tag);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let plan = ExecPlan::equal_rows(64, 4);
        let mut out = vec![0f32; 64];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&plan, &mut out, |_p, rows, _s| {
                if rows.contains(&40) {
                    panic!("kernel boom");
                }
            });
        }));
        let payload = caught.expect_err("kernel panic must reach the dispatcher");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"kernel boom"));
        // The pool must not be wedged: a later dispatch still completes.
        pool.run(&plan, &mut out, |_p, _r, slice| slice.fill(3.0));
        assert!(out.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn caller_side_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let plan = ExecPlan::equal_rows(16, 2);
        let mut out = vec![0f32; 16];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&plan, &mut out, |_p, rows, _s| {
                if rows.start == 0 {
                    panic!("worker-0 boom");
                }
            });
        }));
        assert!(caught.is_err());
        pool.run(&plan, &mut out, |_p, _r, slice| slice.fill(5.0));
        assert!(out.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn malformed_plan_is_rejected_at_dispatch() {
        // Overlapping worker runs (non-monotone assign) via the
        // unchecked constructor: run() must hard-panic, never carve
        // overlapping &mut slices.
        let plan =
            ExecPlan::from_raw_parts_unchecked(8, vec![0, 6, 8], vec![6, 2], vec![0, 2, 1], 1);
        assert!(!plan.is_well_formed());
        let pool = WorkerPool::new(2);
        let mut out = vec![0f32; 8];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&plan, &mut out, |_p, _r, s| s.fill(1.0));
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn balanced_blocks_rejects_bad_bounds() {
        // Non-zero-based bounds.
        assert!(catch_unwind(|| ExecPlan::balanced_blocks(&[1, 4, 8], &[1, 1], 2)).is_err());
        // Non-monotone bounds.
        assert!(catch_unwind(|| ExecPlan::balanced_blocks(&[0, 8, 4], &[1, 1], 2)).is_err());
    }

    #[test]
    fn pool_reports_metrics() {
        let metrics = Metrics::collecting();
        let pool = WorkerPool::with_metrics(2, metrics.clone());
        let plan = ExecPlan::equal_rows(64, 2);
        let mut out = vec![0f32; 64];
        pool.run(&plan, &mut out, |_p, _r, s| s.fill(1.0));
        let snap = metrics.snapshot();
        assert_eq!(snap.counters.get(POOL_DISPATCHES), Some(&1));
        assert!(snap.timers.contains_key(POOL_DISPATCH_SECONDS));
        assert_eq!(snap.gauges.get(POOL_WORKERS), Some(&2.0));
    }

    #[test]
    fn poisoned_pool_surfaces_typed_error_and_recovers_explicitly() {
        let pool = WorkerPool::new(2);
        let plan = ExecPlan::equal_rows(4, 2);
        let mut out = vec![0u32; 4];

        // A kernel panic does NOT poison: caught, drained, re-raised.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&plan, &mut out, |_p, _r, _s| panic!("kernel bang"));
        }));
        assert!(caught.is_err());
        assert!(
            pool.check_healthy().is_ok(),
            "kernel panics must not poison"
        );

        // A panic unwinding through a held internal lock does.
        pool.poison_for_test();
        let err = pool
            .try_run(&plan, &mut out, |_p, _r, _s| {})
            .expect_err("poisoned pool must refuse dispatch");
        assert_eq!(err.lock_name(), "pool/state");
        assert!(err.to_string().contains("pool/state"), "{err}");
        assert!(err.to_string().contains("clear_poison"), "{err}");
        // The panicking wrappers carry the same message.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&plan, &mut out, |_p, _r, _s| {});
        }));
        let payload = caught.expect_err("run must panic on a poisoned pool");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("worker pool poisoned"), "{msg}");

        // Recovery is explicit, never implicit.
        assert!(pool.check_healthy().is_err());
        pool.clear_poison();
        pool.check_healthy().expect("cleared pool is healthy");
        pool.run(&plan, &mut out, |_p, rows, s| {
            for (i, v) in s.iter_mut().enumerate() {
                *v = (rows.start + i) as u32;
            }
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}

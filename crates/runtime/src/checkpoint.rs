//! Versioned, checksummed solver snapshots and the sinks that store them.
//!
//! A [`Snapshot`] is a named-section container: magic + format version,
//! a plan hash binding the snapshot to the geometry/partitioning it was
//! taken under, the iteration counter, a list of typed named sections
//! (f32 vectors for solver state, f64/u64 scalars and f64 vectors for
//! metadata), and a trailing FNV-1a 64 checksum over everything before
//! it. Decoding validates magic, version, and checksum before touching
//! any section, so a truncated or corrupted file is rejected with a
//! typed [`CheckpointError`] instead of deserializing garbage.
//!
//! Storage is abstracted behind [`CheckpointSink`]: [`FileCheckpointSink`]
//! writes `{base}.{slot}` via a temp file + atomic rename (a crash
//! mid-save leaves the previous snapshot intact), and
//! [`MemoryCheckpointSink`] backs tests.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use xct_model::sync::Mutex;

use crate::comm::fnv1a64;

/// Magic prefix of every snapshot: `XCTCKPT` + the format version byte.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"XCTCKPT\x02";

/// The current snapshot format version (the last magic byte). Version 2
/// added the u64-vector section kind (batched solver state); readers
/// accept every version back to [`SNAPSHOT_MIN_VERSION`].
pub const SNAPSHOT_VERSION: u8 = 2;

/// The oldest snapshot format version this build can still read.
pub const SNAPSHOT_MIN_VERSION: u8 = 1;

/// Why a snapshot could not be read, written, or interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file carries a format version this build cannot read.
    UnsupportedVersion {
        /// The version byte found in the file.
        found: u8,
    },
    /// The file ends before the advertised contents do.
    Truncated {
        /// Which part of the layout was cut short.
        context: &'static str,
    },
    /// The trailing checksum does not match the contents.
    ChecksumMismatch,
    /// A section the reader requires is absent.
    MissingSection {
        /// The requested section name.
        name: String,
    },
    /// A section exists but holds a different payload type.
    WrongKind {
        /// The requested section name.
        name: String,
    },
    /// The same section name appears twice.
    DuplicateSection {
        /// The duplicated section name.
        name: String,
    },
    /// An unknown section kind byte (file from a newer writer).
    UnknownKind {
        /// The unrecognized kind byte.
        kind: u8,
    },
    /// Underlying storage failed (message from the I/O layer).
    Io {
        /// The rendered I/O error.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            CheckpointError::Truncated { context } => {
                write!(f, "snapshot truncated in {context}")
            }
            CheckpointError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            CheckpointError::MissingSection { name } => {
                write!(f, "snapshot is missing section `{name}`")
            }
            CheckpointError::WrongKind { name } => {
                write!(f, "snapshot section `{name}` has the wrong payload type")
            }
            CheckpointError::DuplicateSection { name } => {
                write!(f, "snapshot section `{name}` appears twice")
            }
            CheckpointError::UnknownKind { kind } => {
                write!(f, "unknown snapshot section kind {kind}")
            }
            CheckpointError::Io { message } => write!(f, "snapshot I/O failed: {message}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One typed section payload.
#[derive(Debug, Clone, PartialEq)]
enum SectionData {
    F32Vec(Vec<f32>),
    F64(f64),
    U64(u64),
    F64Vec(Vec<f64>),
    U64Vec(Vec<u64>),
}

impl SectionData {
    fn kind(&self) -> u8 {
        match self {
            SectionData::F32Vec(_) => 0,
            SectionData::F64(_) => 1,
            SectionData::U64(_) => 2,
            SectionData::F64Vec(_) => 3,
            SectionData::U64Vec(_) => 4,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Section {
    name: String,
    data: SectionData,
}

/// A versioned, checksummed solver snapshot: plan hash + iteration +
/// named typed sections. See the module docs for the byte layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    plan_hash: u64,
    iteration: u64,
    sections: Vec<Section>,
}

impl Snapshot {
    /// Start an empty snapshot bound to a plan hash and iteration.
    pub fn new(plan_hash: u64, iteration: u64) -> Self {
        Snapshot {
            plan_hash,
            iteration,
            sections: Vec::new(),
        }
    }

    /// The plan hash the snapshot was taken under.
    pub fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    /// The iteration counter at save time.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Names of all sections, in insertion order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    fn find(&self, name: &str) -> Result<&SectionData, CheckpointError> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.data)
            .ok_or_else(|| CheckpointError::MissingSection {
                name: name.to_string(),
            })
    }

    /// Append an f32 vector section (solver vectors: x, residual, …).
    pub fn push_f32s(&mut self, name: &str, data: &[f32]) {
        self.sections.push(Section {
            name: name.to_string(),
            data: SectionData::F32Vec(data.to_vec()),
        });
    }

    /// Append an f64 scalar section (CG gamma, residual norms, …).
    pub fn push_f64(&mut self, name: &str, value: f64) {
        self.sections.push(Section {
            name: name.to_string(),
            data: SectionData::F64(value),
        });
    }

    /// Append a u64 scalar section (rank counts, ranges, flags, …).
    pub fn push_u64(&mut self, name: &str, value: u64) {
        self.sections.push(Section {
            name: name.to_string(),
            data: SectionData::U64(value),
        });
    }

    /// Append an f64 vector section (per-iteration series, …).
    pub fn push_f64s(&mut self, name: &str, data: &[f64]) {
        self.sections.push(Section {
            name: name.to_string(),
            data: SectionData::F64Vec(data.to_vec()),
        });
    }

    /// Append a u64 vector section (per-slice lengths, flags, …). Readers
    /// older than format version 2 reject snapshots containing one.
    pub fn push_u64s(&mut self, name: &str, data: &[u64]) {
        self.sections.push(Section {
            name: name.to_string(),
            data: SectionData::U64Vec(data.to_vec()),
        });
    }

    /// Read an f32 vector section.
    pub fn f32s(&self, name: &str) -> Result<&[f32], CheckpointError> {
        match self.find(name)? {
            SectionData::F32Vec(v) => Ok(v),
            _ => Err(CheckpointError::WrongKind {
                name: name.to_string(),
            }),
        }
    }

    /// Read an f64 scalar section.
    pub fn f64_scalar(&self, name: &str) -> Result<f64, CheckpointError> {
        match self.find(name)? {
            SectionData::F64(v) => Ok(*v),
            _ => Err(CheckpointError::WrongKind {
                name: name.to_string(),
            }),
        }
    }

    /// Read a u64 scalar section.
    pub fn u64_scalar(&self, name: &str) -> Result<u64, CheckpointError> {
        match self.find(name)? {
            SectionData::U64(v) => Ok(*v),
            _ => Err(CheckpointError::WrongKind {
                name: name.to_string(),
            }),
        }
    }

    /// Read an f64 vector section.
    pub fn f64s(&self, name: &str) -> Result<&[f64], CheckpointError> {
        match self.find(name)? {
            SectionData::F64Vec(v) => Ok(v),
            _ => Err(CheckpointError::WrongKind {
                name: name.to_string(),
            }),
        }
    }

    /// Read a u64 vector section.
    pub fn u64s(&self, name: &str) -> Result<&[u64], CheckpointError> {
        match self.find(name)? {
            SectionData::U64Vec(v) => Ok(v),
            _ => Err(CheckpointError::WrongKind {
                name: name.to_string(),
            }),
        }
    }

    /// True when `name` exists (any kind).
    pub fn has(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    /// Serialize to the on-disk byte layout (magic, header, sections,
    /// trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.plan_hash.to_le_bytes());
        out.extend_from_slice(&self.iteration.to_le_bytes());
        // in-range: a snapshot holds a handful of named sections, never 4G
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            // in-range: section names are short static identifiers
            out.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.push(s.data.kind());
            match &s.data {
                SectionData::F32Vec(v) => {
                    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                SectionData::F64(x) => {
                    out.extend_from_slice(&1u64.to_le_bytes());
                    out.extend_from_slice(&x.to_le_bytes());
                }
                SectionData::U64(x) => {
                    out.extend_from_slice(&1u64.to_le_bytes());
                    out.extend_from_slice(&x.to_le_bytes());
                }
                SectionData::F64Vec(v) => {
                    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                SectionData::U64Vec(v) => {
                    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parse and validate a snapshot: magic, version, and checksum are
    /// checked before any section is interpreted.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated { context: "magic" });
        }
        if bytes[..7] != SNAPSHOT_MAGIC[..7] {
            return Err(CheckpointError::BadMagic);
        }
        if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&bytes[7]) {
            return Err(CheckpointError::UnsupportedVersion { found: bytes[7] });
        }
        if bytes.len() < 8 + 8 {
            return Err(CheckpointError::Truncated {
                context: "checksum",
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(body) != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }

        let mut r = Reader {
            bytes: body,
            pos: 8,
        };
        let plan_hash = r.u64("plan hash")?;
        let iteration = r.u64("iteration")?;
        let count = r.u32("section count")? as usize;
        let mut sections = Vec::with_capacity(count);
        let mut seen: HashMap<String, ()> = HashMap::with_capacity(count);
        for _ in 0..count {
            let name_len = r.u32("section name length")? as usize;
            let name_bytes = r.take(name_len, "section name")?;
            let name = String::from_utf8_lossy(name_bytes).into_owned();
            if seen.insert(name.clone(), ()).is_some() {
                return Err(CheckpointError::DuplicateSection { name });
            }
            let kind = r.u8("section kind")?;
            let len = r.u64("section length")? as usize;
            let data = match kind {
                0 => {
                    let raw = r.take(len * 4, "f32 section payload")?;
                    SectionData::F32Vec(
                        raw.chunks_exact(4)
                            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                            .collect(),
                    )
                }
                1 => SectionData::F64(f64::from_le_bytes(
                    r.take(8, "f64 section payload")?
                        .try_into()
                        .expect("8-byte take"),
                )),
                2 => SectionData::U64(u64::from_le_bytes(
                    r.take(8, "u64 section payload")?
                        .try_into()
                        .expect("8-byte take"),
                )),
                3 => {
                    let raw = r.take(len * 8, "f64 section payload")?;
                    SectionData::F64Vec(
                        raw.chunks_exact(8)
                            .map(|c| {
                                f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
                            })
                            .collect(),
                    )
                }
                4 => {
                    let raw = r.take(len * 8, "u64 section payload")?;
                    SectionData::U64Vec(
                        raw.chunks_exact(8)
                            .map(|c| {
                                u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
                            })
                            .collect(),
                    )
                }
                other => return Err(CheckpointError::UnknownKind { kind: other }),
            };
            sections.push(Section { name, data });
        }
        Ok(Snapshot {
            plan_hash,
            iteration,
            sections,
        })
    }
}

/// Bounds-checked little-endian reader over a snapshot body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CheckpointError::Truncated { context })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, CheckpointError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, CheckpointError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Where encoded snapshots are stored. `slot` separates independent
/// streams (rank index in a distributed solve, 0 for serial).
pub trait CheckpointSink: Send + Sync {
    /// Persist the encoded snapshot for `slot`, replacing any previous
    /// one atomically (a failed save must not destroy the old snapshot).
    fn save(&self, slot: usize, bytes: &[u8]) -> Result<(), CheckpointError>;

    /// Load the latest snapshot bytes for `slot`; `Ok(None)` when none
    /// was ever saved.
    fn load(&self, slot: usize) -> Result<Option<Vec<u8>>, CheckpointError>;
}

/// File-backed sink: slot `s` lives at `{base}.{s}`, written via a temp
/// file and an atomic rename.
#[derive(Debug, Clone)]
pub struct FileCheckpointSink {
    base: PathBuf,
}

impl FileCheckpointSink {
    /// A sink rooted at `base` (e.g. `--checkpoint /tmp/ck` stores slot 0
    /// at `/tmp/ck.0`).
    pub fn new(base: impl Into<PathBuf>) -> Self {
        FileCheckpointSink { base: base.into() }
    }

    /// The path of `slot`.
    pub fn slot_path(&self, slot: usize) -> PathBuf {
        let mut name = self.base.as_os_str().to_owned();
        name.push(format!(".{slot}"));
        PathBuf::from(name)
    }
}

fn io_err(e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        message: e.to_string(),
    }
}

impl CheckpointSink for FileCheckpointSink {
    fn save(&self, slot: usize, bytes: &[u8]) -> Result<(), CheckpointError> {
        let path = self.slot_path(slot);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io_err)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, bytes).map_err(io_err)?;
        std::fs::rename(&tmp, &path).map_err(io_err)
    }

    fn load(&self, slot: usize) -> Result<Option<Vec<u8>>, CheckpointError> {
        match std::fs::read(self.slot_path(slot)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(e)),
        }
    }
}

/// In-memory sink for tests and single-process resume rehearsals.
#[derive(Debug, Default)]
pub struct MemoryCheckpointSink {
    slots: Mutex<HashMap<usize, Vec<u8>>>,
}

impl MemoryCheckpointSink {
    /// An empty sink.
    pub fn new() -> Self {
        MemoryCheckpointSink::default()
    }

    /// Number of saved slots.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when nothing was saved yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CheckpointSink for MemoryCheckpointSink {
    fn save(&self, slot: usize, bytes: &[u8]) -> Result<(), CheckpointError> {
        self.slots.lock().insert(slot, bytes.to_vec());
        Ok(())
    }

    fn load(&self, slot: usize) -> Result<Option<Vec<u8>>, CheckpointError> {
        Ok(self.slots.lock().get(&slot).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(0xDEAD_BEEF, 7);
        s.push_f32s("x", &[1.0, -2.5, 3.25]);
        s.push_f32s("resid", &[0.5; 4]);
        s.push_f64("gamma", 1.0e-3);
        s.push_u64("ranks", 4);
        s.push_f64s("residual_series", &[9.0, 4.0, 1.0]);
        s.push_u64s("active", &[1, 0, 1]);
        s
    }

    #[test]
    fn roundtrip_preserves_everything_bitwise() {
        let s = sample();
        let bytes = s.encode();
        let d = Snapshot::decode(&bytes).unwrap();
        assert_eq!(d, s);
        assert_eq!(d.plan_hash(), 0xDEAD_BEEF);
        assert_eq!(d.iteration(), 7);
        assert_eq!(d.f32s("x").unwrap(), &[1.0, -2.5, 3.25]);
        assert_eq!(d.f64_scalar("gamma").unwrap(), 1.0e-3);
        assert_eq!(d.u64_scalar("ranks").unwrap(), 4);
        assert_eq!(d.f64s("residual_series").unwrap(), &[9.0, 4.0, 1.0]);
        assert_eq!(d.u64s("active").unwrap(), &[1, 0, 1]);
        assert_eq!(
            d.section_names(),
            vec!["x", "resid", "gamma", "ranks", "residual_series", "active"]
        );
    }

    #[test]
    fn version_1_snapshots_still_decode() {
        // A v1 writer never emitted u64-vector sections; craft its byte
        // stream by rewriting the version byte and re-checksumming.
        let mut s = Snapshot::new(0xFEED, 3);
        s.push_f32s("x", &[1.0, 2.0]);
        s.push_f64("gamma", 0.25);
        let mut bytes = s.encode();
        bytes[7] = 1;
        let body_len = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        let d = Snapshot::decode(&bytes).unwrap();
        assert_eq!(d.plan_hash(), 0xFEED);
        assert_eq!(d.f32s("x").unwrap(), &[1.0, 2.0]);
        assert_eq!(d.f64_scalar("gamma").unwrap(), 0.25);
    }

    #[test]
    fn version_0_is_rejected() {
        let mut bytes = sample().encode();
        bytes[7] = 0;
        let body_len = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 0 })
        );
    }

    #[test]
    fn nan_and_negative_zero_survive() {
        let mut s = Snapshot::new(1, 0);
        s.push_f32s("v", &[f32::NAN, -0.0, f32::INFINITY]);
        let d = Snapshot::decode(&s.encode()).unwrap();
        let v = d.f32s("v").unwrap();
        assert!(v[0].is_nan());
        assert_eq!(v[1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(v[2], f32::INFINITY);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'Y';
        assert_eq!(Snapshot::decode(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut s = sample().encode();
        s[7] = 9;
        assert_eq!(
            Snapshot::decode(&s),
            Err(CheckpointError::UnsupportedVersion { found: 9 })
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. }
                        | CheckpointError::ChecksumMismatch
                        | CheckpointError::BadMagic
                        | CheckpointError::UnsupportedVersion { .. }
                ),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bitflip_is_rejected() {
        let bytes = sample().encode();
        // Flip one bit per byte position; the checksum (or magic/version
        // check) must catch each one.
        for pos in 0..bytes.len() {
            let mut b = bytes.clone();
            b[pos] ^= 0x10;
            assert!(
                Snapshot::decode(&b).is_err(),
                "bit flip at byte {pos} was accepted"
            );
        }
    }

    #[test]
    fn missing_and_wrong_kind_sections_are_typed() {
        let d = Snapshot::decode(&sample().encode()).unwrap();
        assert_eq!(
            d.f32s("nope"),
            Err(CheckpointError::MissingSection {
                name: "nope".to_string()
            })
        );
        assert_eq!(
            d.f64_scalar("x"),
            Err(CheckpointError::WrongKind {
                name: "x".to_string()
            })
        );
        assert!(d.has("x"));
        assert!(!d.has("nope"));
    }

    #[test]
    fn file_sink_roundtrips_and_is_atomic() {
        let dir = std::env::temp_dir().join(format!(
            "xct-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = FileCheckpointSink::new(dir.join("ck"));
        assert_eq!(sink.load(0).unwrap(), None, "empty slot loads as None");
        let bytes = sample().encode();
        sink.save(0, &bytes).unwrap();
        assert_eq!(sink.load(0).unwrap(), Some(bytes.clone()));
        // Overwrite is atomic: no .tmp residue, new contents visible.
        let bytes2 = Snapshot::new(1, 8).encode();
        sink.save(0, &bytes2).unwrap();
        assert_eq!(sink.load(0).unwrap(), Some(bytes2));
        assert!(!sink.slot_path(0).with_extension("0.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_sink_separates_slots() {
        let sink = MemoryCheckpointSink::new();
        assert!(sink.is_empty());
        sink.save(0, b"zero").unwrap();
        sink.save(3, b"three").unwrap();
        assert_eq!(sink.load(0).unwrap().unwrap(), b"zero");
        assert_eq!(sink.load(3).unwrap().unwrap(), b"three");
        assert_eq!(sink.load(1).unwrap(), None);
        assert_eq!(sink.len(), 2);
    }
}

//! Threads-as-ranks SPMD communicator with MPI collective semantics.
//!
//! Every pair of ranks gets a dedicated FIFO channel, so collectives are
//! deterministic: a rank receiving "from all" drains sources in rank
//! order, and reductions combine contributions in rank order (bitwise
//! reproducible across runs, unlike a racy shared accumulator).

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Raw message payload moved between ranks.
type Payload = Vec<u8>;

/// Per-rank collective statistics: how many collectives this rank entered
/// and how long it spent inside them (including the wait for peers).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CollectiveStats {
    /// Number of collective operations entered.
    pub calls: u64,
    /// Wall-clock seconds spent inside collectives.
    pub seconds: f64,
}

struct Shared {
    size: usize,
    barrier: Barrier,
    /// `bytes[src * size + dst]` — per-pair traffic in bytes.
    traffic: Mutex<Vec<u64>>,
    /// Per-rank collective call counts and latencies.
    collectives: Mutex<Vec<CollectiveStats>>,
}

/// Per-pair byte counts recorded by the collectives: the communication
/// matrix of Fig 7(c).
#[derive(Debug, Clone)]
pub struct CommLedger {
    size: usize,
    bytes: Vec<u64>,
    collectives: Vec<CollectiveStats>,
}

impl CommLedger {
    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Bytes sent from `src` to `dst` (self-traffic is not counted).
    pub fn bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.size + dst]
    }

    /// Total bytes sent by `rank`.
    pub fn sent_by(&self, rank: usize) -> u64 {
        (0..self.size).map(|d| self.bytes(rank, d)).sum()
    }

    /// Total bytes received by `rank`.
    pub fn received_by(&self, rank: usize) -> u64 {
        (0..self.size).map(|s| self.bytes(s, rank)).sum()
    }

    /// Total traffic over all pairs.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of communicating (nonzero) pairs — the sparsity of the
    /// communication matrix.
    pub fn nonzero_pairs(&self) -> usize {
        self.bytes.iter().filter(|&&b| b > 0).count()
    }

    /// The full per-pair byte matrix, row-major `size × size`
    /// (`matrix[src * size + dst]`), for export.
    pub fn byte_matrix(&self) -> Vec<u64> {
        self.bytes.clone()
    }

    /// Collective call count and latency of `rank`.
    pub fn collectives(&self, rank: usize) -> CollectiveStats {
        self.collectives[rank]
    }
}

/// Handle held by one rank inside [`run_ranks`].
pub struct Communicator {
    rank: usize,
    shared: Arc<Shared>,
    /// `senders[dst]`: my channel to `dst`.
    senders: Vec<Sender<Payload>>,
    /// `receivers[src]`: channel from `src` to me.
    receivers: Vec<Receiver<Payload>>,
}

impl Communicator {
    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let t = Instant::now();
        self.shared.barrier.wait();
        self.record_collective(t);
    }

    fn record_collective(&self, started: Instant) {
        let elapsed = started.elapsed().as_secs_f64();
        let mut c = self.shared.collectives.lock();
        let s = &mut c[self.rank];
        s.calls += 1;
        s.seconds += elapsed;
    }

    fn record(&self, dst: usize, bytes: usize) {
        if dst != self.rank && bytes > 0 {
            let mut t = self.shared.traffic.lock();
            t[self.rank * self.shared.size + dst] += bytes as u64;
        }
    }

    /// MPI_Alltoallv: send `send[dst]` to each rank, receive one buffer
    /// from each rank, returned in rank order. Self-delivery is a move,
    /// not traffic.
    pub fn alltoallv(&self, send: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        assert_eq!(send.len(), self.size(), "one send buffer per rank");
        let t = Instant::now();
        let mut own: Option<Vec<f32>> = None;
        for (dst, buf) in send.into_iter().enumerate() {
            if dst == self.rank {
                own = Some(buf);
            } else {
                self.record(dst, buf.len() * 4);
                self.senders[dst]
                    .send(bytes_of_f32(buf))
                    .expect("peer rank hung up");
            }
        }
        let out = (0..self.size())
            .map(|src| {
                if src == self.rank {
                    own.take().unwrap()
                } else {
                    f32_of_bytes(self.receivers[src].recv().expect("peer rank hung up"))
                }
            })
            .collect();
        self.record_collective(t);
        out
    }

    /// MPI_Allgather of one buffer per rank (returned in rank order).
    pub fn allgather(&self, mine: Vec<f32>) -> Vec<Vec<f32>> {
        let send: Vec<Vec<f32>> = (0..self.size()).map(|_| mine.clone()).collect();
        self.alltoallv(send)
    }

    /// MPI_Allreduce(SUM) on equal-length buffers. Contributions are
    /// summed in rank order, so the result is deterministic.
    pub fn allreduce_sum(&self, mine: &mut [f32]) {
        let gathered = self.allgather(mine.to_vec());
        for v in mine.iter_mut() {
            *v = 0.0;
        }
        for buf in gathered {
            assert_eq!(buf.len(), mine.len(), "allreduce length mismatch");
            for (acc, v) in mine.iter_mut().zip(buf) {
                *acc += v;
            }
        }
    }

    /// MPI_Alltoallv of u32 index lists (setup/metadata exchanges, e.g.
    /// telling each peer which sinogram rows will arrive from us).
    pub fn alltoallv_u32(&self, send: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        assert_eq!(send.len(), self.size(), "one send buffer per rank");
        let t = Instant::now();
        let mut own: Option<Vec<u32>> = None;
        for (dst, buf) in send.into_iter().enumerate() {
            if dst == self.rank {
                own = Some(buf);
            } else {
                self.record(dst, buf.len() * 4);
                let mut bytes = Vec::with_capacity(buf.len() * 4);
                for v in buf {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                self.senders[dst].send(bytes).expect("peer rank hung up");
            }
        }
        let out = (0..self.size())
            .map(|src| {
                if src == self.rank {
                    own.take().unwrap()
                } else {
                    let b = self.receivers[src].recv().expect("peer rank hung up");
                    b.chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect()
                }
            })
            .collect();
        self.record_collective(t);
        out
    }

    /// MPI_Alltoall of u64 counts (metadata exchanges).
    pub fn alltoall_counts(&self, send: Vec<u64>) -> Vec<u64> {
        assert_eq!(send.len(), self.size());
        let bufs: Vec<Vec<f32>> = send
            .iter()
            .map(|&v| {
                let b = v.to_le_bytes();
                vec![
                    f32::from_le_bytes([b[0], b[1], b[2], b[3]]),
                    f32::from_le_bytes([b[4], b[5], b[6], b[7]]),
                ]
            })
            .collect();
        self.alltoallv(bufs)
            .into_iter()
            .map(|buf| {
                let a = buf[0].to_le_bytes();
                let b = buf[1].to_le_bytes();
                u64::from_le_bytes([a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]])
            })
            .collect()
    }
}

fn bytes_of_f32(v: Vec<f32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn f32_of_bytes(b: Vec<u8>) -> Vec<f32> {
    assert_eq!(b.len() % 4, 0);
    b.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Run an SPMD function on `size` thread-ranks and return each rank's
/// result (in rank order) together with the traffic ledger.
///
/// The closure receives this rank's [`Communicator`]; ranks share nothing
/// else. Panics in any rank propagate.
///
/// ```
/// use xct_runtime::run_ranks;
/// // Four ranks allreduce their rank ids: everyone ends with 0+1+2+3.
/// let (results, ledger) = run_ranks(4, |comm| {
///     let mut v = vec![comm.rank() as f32];
///     comm.allreduce_sum(&mut v);
///     v[0]
/// });
/// assert_eq!(results, vec![6.0; 4]);
/// assert!(ledger.total() > 0);
/// ```
pub fn run_ranks<F, R>(size: usize, f: F) -> (Vec<R>, CommLedger)
where
    F: Fn(&Communicator) -> R + Sync,
    R: Send,
{
    assert!(size > 0);
    let shared = Arc::new(Shared {
        size,
        barrier: Barrier::new(size),
        traffic: Mutex::new(vec![0; size * size]),
        collectives: Mutex::new(vec![CollectiveStats::default(); size]),
    });

    // channels: txs[src][dst] pairs with rxs[dst][src]. Pushing one
    // receiver onto every rxs row per outer (src) iteration lands each at
    // index `src` without explicit indexing.
    let mut txs: Vec<Vec<Option<Sender<Payload>>>> = Vec::with_capacity(size);
    let mut rxs: Vec<Vec<Option<Receiver<Payload>>>> =
        (0..size).map(|_| Vec::with_capacity(size)).collect();
    for _src in 0..size {
        let mut row = Vec::with_capacity(size);
        for rx_row in rxs.iter_mut() {
            let (tx, rx) = unbounded();
            row.push(Some(tx));
            rx_row.push(Some(rx));
        }
        txs.push(row);
    }

    let comms: Vec<Communicator> = (0..size)
        .map(|rank| Communicator {
            rank,
            shared: shared.clone(),
            senders: txs[rank].iter_mut().map(|t| t.take().unwrap()).collect(),
            receivers: rxs[rank].iter_mut().map(|r| r.take().unwrap()).collect(),
        })
        .collect();

    let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (comm, slot) in comms.iter().zip(results.iter_mut()) {
            let f = &f;
            handles.push(scope.spawn(move || {
                *slot = Some(f(comm));
            }));
        }
        for h in handles {
            h.join().expect("rank panicked");
        }
    });

    let ledger = CommLedger {
        size,
        bytes: shared.traffic.lock().clone(),
        collectives: shared.collectives.lock().clone(),
    };
    (results.into_iter().map(|r| r.unwrap()).collect(), ledger)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_distinct_and_complete() {
        let (ranks, _) = run_ranks(4, |c| c.rank());
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn alltoallv_exchanges_correctly() {
        let (results, ledger) = run_ranks(3, |c| {
            // Rank r sends [r*10 + dst] to each dst.
            let send: Vec<Vec<f32>> = (0..3).map(|d| vec![(c.rank() * 10 + d) as f32]).collect();
            c.alltoallv(send)
        });
        for (rank, recv) in results.iter().enumerate() {
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(
                    buf,
                    &vec![(src * 10 + rank) as f32],
                    "rank {rank} src {src}"
                );
            }
        }
        // 3 ranks × 2 peers × 4 bytes each.
        assert_eq!(ledger.total(), 24);
        assert_eq!(ledger.nonzero_pairs(), 6);
        assert_eq!(ledger.bytes(0, 0), 0, "self traffic not counted");
    }

    #[test]
    fn alltoallv_variable_sizes() {
        let (results, ledger) = run_ranks(2, |c| {
            let send: Vec<Vec<f32>> = if c.rank() == 0 {
                vec![vec![], vec![1.0, 2.0, 3.0]]
            } else {
                vec![vec![9.0], vec![]]
            };
            c.alltoallv(send)
        });
        assert_eq!(results[0][1], vec![9.0]);
        assert_eq!(results[1][0], vec![1.0, 2.0, 3.0]);
        assert_eq!(ledger.bytes(0, 1), 12);
        assert_eq!(ledger.bytes(1, 0), 4);
    }

    #[test]
    fn allreduce_sums_deterministically() {
        let (results, _) = run_ranks(5, |c| {
            let mut v = vec![c.rank() as f32, 1.0];
            c.allreduce_sum(&mut v);
            v
        });
        for r in results {
            assert_eq!(r, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let (results, _) = run_ranks(4, |c| c.allgather(vec![c.rank() as f32 * 2.0]));
        for r in results {
            let flat: Vec<f32> = r.into_iter().flatten().collect();
            assert_eq!(flat, vec![0.0, 2.0, 4.0, 6.0]);
        }
    }

    #[test]
    fn alltoall_counts_roundtrip() {
        let (results, _) = run_ranks(3, |c| {
            let send: Vec<u64> = (0..3).map(|d| (c.rank() as u64) << 32 | d as u64).collect();
            c.alltoall_counts(send)
        });
        for (rank, recv) in results.iter().enumerate() {
            for (src, &v) in recv.iter().enumerate() {
                assert_eq!(v, (src as u64) << 32 | rank as u64);
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all 4 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn repeated_collectives_stay_matched() {
        let (results, _) = run_ranks(3, |c| {
            let mut acc = 0.0f32;
            for round in 0..10 {
                let send: Vec<Vec<f32>> = (0..3).map(|_| vec![round as f32]).collect();
                let recv = c.alltoallv(send);
                acc += recv.iter().map(|b| b[0]).sum::<f32>();
            }
            acc
        });
        // Each round every rank receives 3 copies of `round`.
        let expect: f32 = (0..10).map(|r| 3.0 * r as f32).sum();
        for r in results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn collective_stats_count_calls_and_time() {
        let (_, ledger) = run_ranks(3, |c| {
            for _ in 0..4 {
                c.alltoallv((0..3).map(|_| vec![1.0f32]).collect());
            }
            c.barrier();
            c.alltoallv_u32((0..3).map(|_| vec![7u32]).collect());
        });
        for rank in 0..3 {
            let s = ledger.collectives(rank);
            assert_eq!(s.calls, 6, "rank {rank}: 4 alltoallv + barrier + u32");
            assert!(s.seconds >= 0.0);
        }
        // The byte matrix export matches the per-pair accessor.
        let m = ledger.byte_matrix();
        for src in 0..3 {
            for dst in 0..3 {
                assert_eq!(m[src * 3 + dst], ledger.bytes(src, dst));
            }
        }
    }

    #[test]
    fn single_rank_works() {
        let (results, ledger) = run_ranks(1, |c| {
            let recv = c.alltoallv(vec![vec![1.0, 2.0]]);
            let mut v = vec![3.0];
            c.allreduce_sum(&mut v);
            (recv, v)
        });
        assert_eq!(results[0].0, vec![vec![1.0, 2.0]]);
        assert_eq!(results[0].1, vec![3.0]);
        assert_eq!(ledger.total(), 0);
    }
}

//! Threads-as-ranks SPMD communicator with MPI collective semantics.
//!
//! Every pair of ranks gets a dedicated FIFO channel, so collectives are
//! deterministic: a rank receiving "from all" drains sources in rank
//! order, and reductions combine contributions in rank order (bitwise
//! reproducible across runs, unlike a racy shared accumulator).
//!
//! The communicator is fault-aware. Every payload travels in a
//! checksummed frame, every blocking wait honors a configurable deadline
//! and the shared abort signal, and a deterministic [`FaultPlan`] can
//! inject rank crashes, message drops, delivery delays, and payload bit
//! flips at keyed points. Failures surface as typed [`CommError`]s
//! through the `try_*` collectives; the panicking collective signatures
//! are kept as thin shims for fault-free callers. [`run_ranks_with`] is
//! the supervised entry point: a rank that fails (or panics) aborts the
//! shared barrier generation and unblocks every survivor with a typed
//! [`CommErrorKind::Aborted`], so no failure can deadlock the run.

use crate::fault::{CommConfig, CommError, CommErrorKind, FaultKind, FaultPlan, FaultStats};
use std::panic::AssertUnwindSafe;

use xct_model::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use xct_model::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use xct_model::sync::{Arc, Condvar, Mutex, MutexGuard};
use xct_model::thread;
use xct_model::time::Instant;

/// A message frame: the payload plus its FNV-1a 64 checksum, computed at
/// send time and verified at receive time so corruption (e.g. an injected
/// bit flip) is detected instead of silently deserialized.
struct Frame {
    checksum: u64,
    payload: Vec<u8>,
}

/// FNV-1a 64-bit hash — the frame and checkpoint checksum of this crate.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-rank collective statistics: how many collectives this rank entered
/// and how long it spent inside them (including the wait for peers).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CollectiveStats {
    /// Number of collective operations entered.
    pub calls: u64,
    /// Wall-clock seconds spent inside collectives.
    pub seconds: f64,
}

/// Abortable barrier state: a generation counter instead of
/// `std::sync::Barrier`, so a failing rank can wake every waiter.
#[derive(Default)]
struct BarrierState {
    waiting: usize,
    generation: u64,
}

#[derive(Default)]
struct FaultCounters {
    injected: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    aborts: AtomicU64,
}

impl FaultCounters {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            injected: self.injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    size: usize,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    /// Set once the first failure is posted; every blocked wait polls it.
    aborted: AtomicBool,
    /// The originating failure. Non-[`CommErrorKind::Aborted`] failures
    /// take priority (an `Aborted` is always a consequence, never a
    /// cause); within a class the first poster wins.
    failure: Mutex<Option<CommError>>,
    config: CommConfig,
    plan: Arc<FaultPlan>,
    counters: FaultCounters,
    /// `bytes[src * size + dst]` — per-pair traffic in bytes.
    traffic: Mutex<Vec<u64>>,
    /// Per-rank collective call counts and latencies.
    collectives: Mutex<Vec<CollectiveStats>>,
}

impl Shared {
    fn lock_barrier(&self) -> MutexGuard<'_, BarrierState> {
        self.barrier.lock()
    }

    /// Record `err` as the run's failure (subject to class priority) and
    /// wake everything that might be blocked on it.
    fn post_failure(&self, err: CommError) {
        {
            let mut slot = self.failure.lock();
            let replace = match slot.as_ref() {
                None => true,
                Some(old) => {
                    matches!(old.kind, CommErrorKind::Aborted { .. })
                        && !matches!(err.kind, CommErrorKind::Aborted { .. })
                }
            };
            if replace {
                *slot = Some(err);
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
        // Wake barrier waiters; channel waiters notice via their poll tick.
        let _guard = self.lock_barrier();
        self.barrier_cv.notify_all();
    }

    /// The rank whose failure aborted the run (0 if the slot is somehow
    /// empty, which cannot happen once `aborted` is set).
    fn abort_origin(&self) -> usize {
        self.failure.lock().as_ref().map(|e| e.rank).unwrap_or(0)
    }

    fn failure(&self) -> Option<CommError> {
        self.failure.lock().clone()
    }
}

/// Per-pair byte counts recorded by the collectives: the communication
/// matrix of Fig 7(c).
#[derive(Debug, Clone)]
pub struct CommLedger {
    size: usize,
    bytes: Vec<u64>,
    collectives: Vec<CollectiveStats>,
    faults: FaultStats,
}

impl CommLedger {
    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Bytes sent from `src` to `dst` (self-traffic is not counted).
    pub fn bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.size + dst]
    }

    /// Total bytes sent by `rank`.
    pub fn sent_by(&self, rank: usize) -> u64 {
        (0..self.size).map(|d| self.bytes(rank, d)).sum()
    }

    /// Total bytes received by `rank`.
    pub fn received_by(&self, rank: usize) -> u64 {
        (0..self.size).map(|s| self.bytes(s, rank)).sum()
    }

    /// Total traffic over all pairs.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of communicating (nonzero) pairs — the sparsity of the
    /// communication matrix.
    pub fn nonzero_pairs(&self) -> usize {
        self.bytes.iter().filter(|&&b| b > 0).count()
    }

    /// The full per-pair byte matrix, row-major `size × size`
    /// (`matrix[src * size + dst]`), for export.
    pub fn byte_matrix(&self) -> Vec<u64> {
        self.bytes.clone()
    }

    /// Collective call count and latency of `rank`.
    pub fn collectives(&self, rank: usize) -> CollectiveStats {
        self.collectives[rank]
    }

    /// Aggregate fault activity of the run (injections, retries,
    /// timeouts, abort unblocks). All zero under an empty [`FaultPlan`]
    /// with no failures.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }
}

/// Handle held by one rank inside [`run_ranks`] / [`run_ranks_with`].
pub struct Communicator {
    rank: usize,
    shared: Arc<Shared>,
    /// Counts the collectives this rank has entered; the key space of
    /// [`FaultPlan`]. Each public collective bumps it exactly once
    /// (wrappers like `allreduce_sum` count as their one underlying
    /// `alltoallv`).
    collective_index: AtomicU64,
    /// `senders[dst]`: my channel to `dst`.
    senders: Vec<Sender<Frame>>,
    /// `receivers[src]`: channel from `src` to me.
    receivers: Vec<Receiver<Frame>>,
}

impl Communicator {
    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// How many collectives this rank has entered so far — the next
    /// collective gets this index as its [`FaultPlan`] key.
    pub fn collective_index(&self) -> u64 {
        self.collective_index.load(Ordering::Relaxed)
    }

    fn next_index(&self) -> u64 {
        self.collective_index.fetch_add(1, Ordering::Relaxed)
    }

    /// Check the fault plan for a crash keyed on this collective entry.
    fn inject_crash(&self, index: u64, collective: &'static str) -> Result<(), CommError> {
        if self.shared.plan.take_crash(self.rank, index) {
            self.shared
                .counters
                .injected
                .fetch_add(1, Ordering::Relaxed);
            let err = CommError {
                rank: self.rank,
                peer: None,
                collective,
                kind: CommErrorKind::Crash,
            };
            self.shared.post_failure(err.clone());
            return Err(err);
        }
        Ok(())
    }

    fn aborted_error(&self, collective: &'static str, peer: Option<usize>) -> CommError {
        self.shared.counters.aborts.fetch_add(1, Ordering::Relaxed);
        CommError {
            rank: self.rank,
            peer,
            collective,
            kind: CommErrorKind::Aborted {
                origin: self.shared.abort_origin(),
            },
        }
    }

    fn record_collective(&self, started: Instant) {
        let elapsed = started.elapsed().as_secs_f64();
        let mut c = self.shared.collectives.lock();
        let s = &mut c[self.rank];
        s.calls += 1;
        s.seconds += elapsed;
    }

    fn record(&self, dst: usize, bytes: usize) {
        // Payload bytes only: frame checksums are transport overhead and
        // must not show up in the ledger xct-check reconciles against the
        // schedule-predicted byte matrix.
        if dst != self.rank && bytes > 0 {
            let mut t = self.shared.traffic.lock();
            t[self.rank * self.shared.size + dst] += bytes as u64;
        }
    }

    /// Send one framed payload to `dst`, applying any message faults
    /// keyed on this collective entry, with bounded retry/backoff for
    /// injected delivery drops.
    fn send_frame(
        &self,
        dst: usize,
        payload: Vec<u8>,
        faults: &[FaultKind],
        collective: &'static str,
    ) -> Result<(), CommError> {
        let checksum = fnv1a64(&payload);
        let mut payload = payload;
        let mut lost_attempts = 0u32;
        for kind in faults {
            match *kind {
                FaultKind::Delay { micros } => {
                    self.shared
                        .counters
                        .injected
                        .fetch_add(1, Ordering::Relaxed);
                    thread::sleep(std::time::Duration::from_micros(micros));
                }
                FaultKind::BitFlip { bit } => {
                    // Flip after the checksum so the receiver detects it.
                    if !payload.is_empty() {
                        self.shared
                            .counters
                            .injected
                            .fetch_add(1, Ordering::Relaxed);
                        let bit = bit as usize % (payload.len() * 8);
                        payload[bit / 8] ^= 1 << (bit % 8);
                    }
                }
                FaultKind::Drop { attempts } => {
                    self.shared
                        .counters
                        .injected
                        .fetch_add(1, Ordering::Relaxed);
                    lost_attempts = lost_attempts.max(attempts);
                }
                FaultKind::Crash => {}
            }
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if attempt <= lost_attempts {
                // This delivery attempt is lost in transit.
                if attempt > self.shared.config.retries {
                    let err = CommError {
                        rank: self.rank,
                        peer: Some(dst),
                        collective,
                        kind: CommErrorKind::SendLost { attempts: attempt },
                    };
                    self.shared.post_failure(err.clone());
                    return Err(err);
                }
                self.shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                thread::sleep(self.shared.config.backoff);
                continue;
            }
            return self.senders[dst]
                .send(Frame { checksum, payload })
                .map_err(|_| self.peer_gone(dst, collective));
        }
    }

    /// The channel to/from `peer` hung up: an abort consequence if the
    /// run is aborted, otherwise a disconnect in its own right.
    fn peer_gone(&self, peer: usize, collective: &'static str) -> CommError {
        if self.shared.aborted.load(Ordering::SeqCst) {
            return self.aborted_error(collective, Some(peer));
        }
        let err = CommError {
            rank: self.rank,
            peer: Some(peer),
            collective,
            kind: CommErrorKind::Disconnected,
        };
        self.shared.post_failure(err.clone());
        err
    }

    /// Receive one framed payload from `src`: drain-first, then poll the
    /// abort flag and the deadline between bounded waits, then verify the
    /// frame checksum.
    fn recv_frame(&self, src: usize, collective: &'static str) -> Result<Vec<u8>, CommError> {
        let started = Instant::now();
        loop {
            // Drain in-flight messages before looking at the abort flag:
            // a rank that fails *after* sending must not cause peers to
            // discard data the collective already put on the wire.
            match self.receivers[src].try_recv() {
                Ok(frame) => return self.verify(frame, src, collective),
                Err(TryRecvError::Disconnected) => return Err(self.peer_gone(src, collective)),
                Err(TryRecvError::Empty) => {}
            }
            if self.shared.aborted.load(Ordering::SeqCst) {
                return Err(self.aborted_error(collective, Some(src)));
            }
            let mut tick = self.shared.config.poll;
            if let Some(deadline) = self.shared.config.deadline {
                let waited = started.elapsed();
                if waited >= deadline {
                    self.shared
                        .counters
                        .timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    let err = CommError {
                        rank: self.rank,
                        peer: Some(src),
                        collective,
                        kind: CommErrorKind::Timeout {
                            waited_ms: waited.as_millis() as u64,
                        },
                    };
                    self.shared.post_failure(err.clone());
                    return Err(err);
                }
                tick = tick.min(deadline - waited);
            }
            match self.receivers[src].recv_timeout(tick) {
                Ok(frame) => return self.verify(frame, src, collective),
                Err(RecvTimeoutError::Disconnected) => return Err(self.peer_gone(src, collective)),
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }

    fn verify(
        &self,
        frame: Frame,
        src: usize,
        collective: &'static str,
    ) -> Result<Vec<u8>, CommError> {
        if fnv1a64(&frame.payload) != frame.checksum {
            let err = CommError {
                rank: self.rank,
                peer: Some(src),
                collective,
                kind: CommErrorKind::Corrupt,
            };
            self.shared.post_failure(err.clone());
            return Err(err);
        }
        Ok(frame.payload)
    }

    /// Synchronize all ranks.
    ///
    /// # Panics
    /// On any [`CommError`] ([`Communicator::try_barrier`] is the typed
    /// variant).
    pub fn barrier(&self) {
        // lint not active in this crate, but keep the panic localized:
        self.try_barrier().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Synchronize all ranks, honoring the deadline and the abort signal.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        let index = self.next_index();
        self.inject_crash(index, "barrier")?;
        let t = Instant::now();
        let result = self.barrier_wait(t);
        self.record_collective(t);
        result
    }

    fn barrier_wait(&self, started: Instant) -> Result<(), CommError> {
        let shared = &self.shared;
        let mut st = shared.lock_barrier();
        if shared.aborted.load(Ordering::SeqCst) {
            drop(st);
            return Err(self.aborted_error("barrier", None));
        }
        st.waiting += 1;
        if st.waiting == shared.size {
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            shared.barrier_cv.notify_all();
            return Ok(());
        }
        let generation = st.generation;
        loop {
            let (guard, _timeout) = shared.barrier_cv.wait_timeout(st, shared.config.poll);
            st = guard;
            if st.generation != generation {
                return Ok(());
            }
            if shared.aborted.load(Ordering::SeqCst) {
                drop(st);
                return Err(self.aborted_error("barrier", None));
            }
            if let Some(deadline) = shared.config.deadline {
                let waited = started.elapsed();
                if waited >= deadline {
                    drop(st);
                    shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    let err = CommError {
                        rank: self.rank,
                        peer: None,
                        collective: "barrier",
                        kind: CommErrorKind::Timeout {
                            waited_ms: waited.as_millis() as u64,
                        },
                    };
                    shared.post_failure(err.clone());
                    return Err(err);
                }
            }
        }
    }

    /// MPI_Alltoallv: send `send[dst]` to each rank, receive one buffer
    /// from each rank, returned in rank order. Self-delivery is a move,
    /// not traffic.
    ///
    /// # Panics
    /// On any [`CommError`] ([`Communicator::try_alltoallv`] is the typed
    /// variant).
    pub fn alltoallv(&self, send: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        self.try_alltoallv(send).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible MPI_Alltoallv with deadline, retry, and fault injection.
    pub fn try_alltoallv(&self, send: Vec<Vec<f32>>) -> Result<Vec<Vec<f32>>, CommError> {
        assert_eq!(send.len(), self.size(), "one send buffer per rank");
        let index = self.next_index();
        self.inject_crash(index, "alltoallv")?;
        let faults = self.shared.plan.message_faults(self.rank, index);
        let t = Instant::now();
        let mut own: Option<Vec<f32>> = None;
        for (dst, buf) in send.into_iter().enumerate() {
            if dst == self.rank {
                own = Some(buf);
            } else {
                self.record(dst, buf.len() * 4);
                self.send_frame(dst, bytes_of_f32(buf), &faults, "alltoallv")?;
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(own.take().unwrap());
            } else {
                out.push(f32_of_bytes(self.recv_frame(src, "alltoallv")?));
            }
        }
        self.record_collective(t);
        Ok(out)
    }

    /// MPI_Allgather of one buffer per rank (returned in rank order).
    ///
    /// # Panics
    /// On any [`CommError`] ([`Communicator::try_allgather`] is the typed
    /// variant).
    pub fn allgather(&self, mine: Vec<f32>) -> Vec<Vec<f32>> {
        self.try_allgather(mine).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible MPI_Allgather (one collective-index entry).
    pub fn try_allgather(&self, mine: Vec<f32>) -> Result<Vec<Vec<f32>>, CommError> {
        let send: Vec<Vec<f32>> = (0..self.size()).map(|_| mine.clone()).collect();
        self.try_alltoallv(send)
    }

    /// MPI_Allreduce(SUM) on equal-length buffers. Contributions are
    /// summed in rank order, so the result is deterministic.
    ///
    /// # Panics
    /// On any [`CommError`] ([`Communicator::try_allreduce_sum`] is the
    /// typed variant).
    pub fn allreduce_sum(&self, mine: &mut [f32]) {
        self.try_allreduce_sum(mine)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible MPI_Allreduce(SUM); deterministic rank-order summation.
    pub fn try_allreduce_sum(&self, mine: &mut [f32]) -> Result<(), CommError> {
        let gathered = self.try_allgather(mine.to_vec())?;
        for v in mine.iter_mut() {
            *v = 0.0;
        }
        for buf in gathered {
            assert_eq!(buf.len(), mine.len(), "allreduce length mismatch");
            for (acc, v) in mine.iter_mut().zip(buf) {
                *acc += v;
            }
        }
        Ok(())
    }

    /// MPI_Alltoallv of u32 index lists (setup/metadata exchanges, e.g.
    /// telling each peer which sinogram rows will arrive from us).
    ///
    /// # Panics
    /// On any [`CommError`] ([`Communicator::try_alltoallv_u32`] is the
    /// typed variant).
    pub fn alltoallv_u32(&self, send: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        self.try_alltoallv_u32(send)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible MPI_Alltoallv of u32 index lists.
    pub fn try_alltoallv_u32(&self, send: Vec<Vec<u32>>) -> Result<Vec<Vec<u32>>, CommError> {
        assert_eq!(send.len(), self.size(), "one send buffer per rank");
        let index = self.next_index();
        self.inject_crash(index, "alltoallv_u32")?;
        let faults = self.shared.plan.message_faults(self.rank, index);
        let t = Instant::now();
        let mut own: Option<Vec<u32>> = None;
        for (dst, buf) in send.into_iter().enumerate() {
            if dst == self.rank {
                own = Some(buf);
            } else {
                self.record(dst, buf.len() * 4);
                let mut bytes = Vec::with_capacity(buf.len() * 4);
                for v in buf {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                self.send_frame(dst, bytes, &faults, "alltoallv_u32")?;
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(own.take().unwrap());
            } else {
                let b = self.recv_frame(src, "alltoallv_u32")?;
                out.push(
                    b.chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                );
            }
        }
        self.record_collective(t);
        Ok(out)
    }

    /// MPI_Alltoall of u64 counts (metadata exchanges).
    ///
    /// # Panics
    /// On any [`CommError`] ([`Communicator::try_alltoall_counts`] is the
    /// typed variant).
    pub fn alltoall_counts(&self, send: Vec<u64>) -> Vec<u64> {
        self.try_alltoall_counts(send)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible MPI_Alltoall of u64 counts (one collective-index entry,
    /// carried over the f32 alltoallv as two bit-packed lanes).
    pub fn try_alltoall_counts(&self, send: Vec<u64>) -> Result<Vec<u64>, CommError> {
        assert_eq!(send.len(), self.size());
        let bufs: Vec<Vec<f32>> = send
            .iter()
            .map(|&v| {
                let b = v.to_le_bytes();
                vec![
                    f32::from_le_bytes([b[0], b[1], b[2], b[3]]),
                    f32::from_le_bytes([b[4], b[5], b[6], b[7]]),
                ]
            })
            .collect();
        Ok(self
            .try_alltoallv(bufs)?
            .into_iter()
            .map(|buf| {
                let a = buf[0].to_le_bytes();
                let b = buf[1].to_le_bytes();
                u64::from_le_bytes([a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]])
            })
            .collect())
    }
}

fn bytes_of_f32(v: Vec<f32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn f32_of_bytes(b: Vec<u8>) -> Vec<f32> {
    assert_eq!(b.len() % 4, 0);
    b.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run an SPMD function on `size` thread-ranks and return each rank's
/// result (in rank order) together with the traffic ledger.
///
/// The closure receives this rank's [`Communicator`]; ranks share nothing
/// else. Panics in any rank propagate — survivors are unblocked via the
/// shared abort signal first, so a panicking rank can never deadlock the
/// others (they observe [`CommErrorKind::Aborted`] and unwind too).
///
/// ```
/// use xct_runtime::run_ranks;
/// // Four ranks allreduce their rank ids: everyone ends with 0+1+2+3.
/// let (results, ledger) = run_ranks(4, |comm| {
///     let mut v = vec![comm.rank() as f32];
///     comm.allreduce_sum(&mut v);
///     v[0]
/// });
/// assert_eq!(results, vec![6.0; 4]);
/// assert!(ledger.total() > 0);
/// ```
pub fn run_ranks<F, R>(size: usize, f: F) -> (Vec<R>, CommLedger)
where
    F: Fn(&Communicator) -> R + Sync,
    R: Send,
{
    match run_ranks_inner(
        size,
        CommConfig::unbounded(),
        Arc::new(FaultPlan::new()),
        |comm| Ok(f(comm)),
    ) {
        Ok(out) => out,
        Err(err) => panic!("{err}"),
    }
}

/// Supervised SPMD run: fault plan, deadlines, and typed failure
/// propagation.
///
/// Each rank's closure returns `Result<R, CommError>`; the first failure
/// (a typed collective error, a closure error, or a caught panic) aborts
/// the shared barrier generation, unblocks every survivor, and is
/// returned as the run's single originating error. On success every
/// rank's value is returned in rank order with the ledger.
///
/// ```
/// use std::sync::Arc;
/// use xct_runtime::{run_ranks_with, CommConfig, FaultPlan};
/// let (results, ledger) = run_ranks_with(
///     3,
///     CommConfig::default(),
///     Arc::new(FaultPlan::new()),
///     |comm| {
///         let mut v = vec![1.0f32];
///         comm.try_allreduce_sum(&mut v)?;
///         Ok(v[0])
///     },
/// )
/// .unwrap();
/// assert_eq!(results, vec![3.0; 3]);
/// assert_eq!(ledger.fault_stats().injected, 0);
/// ```
pub fn run_ranks_with<F, R>(
    size: usize,
    config: CommConfig,
    plan: Arc<FaultPlan>,
    f: F,
) -> Result<(Vec<R>, CommLedger), CommError>
where
    F: Fn(&Communicator) -> Result<R, CommError> + Sync,
    R: Send,
{
    run_ranks_inner(size, config, plan, f)
}

fn run_ranks_inner<F, R>(
    size: usize,
    config: CommConfig,
    plan: Arc<FaultPlan>,
    f: F,
) -> Result<(Vec<R>, CommLedger), CommError>
where
    F: Fn(&Communicator) -> Result<R, CommError> + Sync,
    R: Send,
{
    assert!(size > 0);
    let shared = Arc::new(Shared {
        size,
        barrier: Mutex::named("comm/barrier", BarrierState::default()),
        barrier_cv: Condvar::new(),
        aborted: AtomicBool::new(false),
        failure: Mutex::named("comm/failure", None),
        config,
        plan,
        counters: FaultCounters::default(),
        traffic: Mutex::named("comm/traffic", vec![0; size * size]),
        collectives: Mutex::named("comm/collectives", vec![CollectiveStats::default(); size]),
    });

    // channels: txs[src][dst] pairs with rxs[dst][src]. Pushing one
    // receiver onto every rxs row per outer (src) iteration lands each at
    // index `src` without explicit indexing.
    let mut txs: Vec<Vec<Option<Sender<Frame>>>> = Vec::with_capacity(size);
    let mut rxs: Vec<Vec<Option<Receiver<Frame>>>> =
        (0..size).map(|_| Vec::with_capacity(size)).collect();
    for _src in 0..size {
        let mut row = Vec::with_capacity(size);
        for rx_row in rxs.iter_mut() {
            let (tx, rx) = unbounded();
            row.push(Some(tx));
            rx_row.push(Some(rx));
        }
        txs.push(row);
    }

    let comms: Vec<Communicator> = (0..size)
        .map(|rank| Communicator {
            rank,
            shared: shared.clone(),
            collective_index: AtomicU64::new(0),
            senders: txs[rank].iter_mut().map(|t| t.take().unwrap()).collect(),
            receivers: rxs[rank].iter_mut().map(|r| r.take().unwrap()).collect(),
        })
        .collect();

    let mut results: Vec<Option<Result<R, CommError>>> = (0..size).map(|_| None).collect();
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (comm, slot) in comms.iter().zip(results.iter_mut()) {
            let f = &f;
            handles.push(scope.spawn(move || {
                // Catch panics so one rank's unwind cannot strand peers
                // blocked on it: post the failure, flip the abort flag,
                // and let survivors return typed Aborted errors.
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(comm))) {
                    Ok(Ok(value)) => *slot = Some(Ok(value)),
                    Ok(Err(err)) => {
                        comm.shared.post_failure(err.clone());
                        *slot = Some(Err(err));
                    }
                    Err(payload) => {
                        let err = CommError {
                            rank: comm.rank,
                            peer: None,
                            collective: "run_ranks",
                            kind: CommErrorKind::Panic {
                                message: panic_message(payload),
                            },
                        };
                        comm.shared.post_failure(err.clone());
                        *slot = Some(Err(err));
                    }
                }
            }));
        }
        for h in handles {
            // Never panics: every rank closure is wrapped in catch_unwind.
            let _ = h.join();
        }
    });
    drop(comms);

    let ledger = CommLedger {
        size,
        bytes: shared.traffic.lock().clone(),
        collectives: shared.collectives.lock().clone(),
        faults: shared.counters.snapshot(),
    };

    if let Some(err) = shared.failure() {
        return Err(err);
    }
    let mut out = Vec::with_capacity(size);
    for slot in results {
        match slot.expect("every rank writes its slot") {
            Ok(value) => out.push(value),
            Err(err) => return Err(err),
        }
    }
    Ok((out, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ranks_are_distinct_and_complete() {
        let (ranks, _) = run_ranks(4, |c| c.rank());
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn alltoallv_exchanges_correctly() {
        let (results, ledger) = run_ranks(3, |c| {
            // Rank r sends [r*10 + dst] to each dst.
            let send: Vec<Vec<f32>> = (0..3).map(|d| vec![(c.rank() * 10 + d) as f32]).collect();
            c.alltoallv(send)
        });
        for (rank, recv) in results.iter().enumerate() {
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(
                    buf,
                    &vec![(src * 10 + rank) as f32],
                    "rank {rank} src {src}"
                );
            }
        }
        // 3 ranks × 2 peers × 4 bytes each.
        assert_eq!(ledger.total(), 24);
        assert_eq!(ledger.nonzero_pairs(), 6);
        assert_eq!(ledger.bytes(0, 0), 0, "self traffic not counted");
    }

    #[test]
    fn alltoallv_variable_sizes() {
        let (results, ledger) = run_ranks(2, |c| {
            let send: Vec<Vec<f32>> = if c.rank() == 0 {
                vec![vec![], vec![1.0, 2.0, 3.0]]
            } else {
                vec![vec![9.0], vec![]]
            };
            c.alltoallv(send)
        });
        assert_eq!(results[0][1], vec![9.0]);
        assert_eq!(results[1][0], vec![1.0, 2.0, 3.0]);
        assert_eq!(ledger.bytes(0, 1), 12);
        assert_eq!(ledger.bytes(1, 0), 4);
    }

    #[test]
    fn allreduce_sums_deterministically() {
        let (results, _) = run_ranks(5, |c| {
            let mut v = vec![c.rank() as f32, 1.0];
            c.allreduce_sum(&mut v);
            v
        });
        for r in results {
            assert_eq!(r, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let (results, _) = run_ranks(4, |c| c.allgather(vec![c.rank() as f32 * 2.0]));
        for r in results {
            let flat: Vec<f32> = r.into_iter().flatten().collect();
            assert_eq!(flat, vec![0.0, 2.0, 4.0, 6.0]);
        }
    }

    #[test]
    fn alltoall_counts_roundtrip() {
        let (results, _) = run_ranks(3, |c| {
            let send: Vec<u64> = (0..3).map(|d| (c.rank() as u64) << 32 | d as u64).collect();
            c.alltoall_counts(send)
        });
        for (rank, recv) in results.iter().enumerate() {
            for (src, &v) in recv.iter().enumerate() {
                assert_eq!(v, (src as u64) << 32 | rank as u64);
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all 4 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn repeated_collectives_stay_matched() {
        let (results, _) = run_ranks(3, |c| {
            let mut acc = 0.0f32;
            for round in 0..10 {
                let send: Vec<Vec<f32>> = (0..3).map(|_| vec![round as f32]).collect();
                let recv = c.alltoallv(send);
                acc += recv.iter().map(|b| b[0]).sum::<f32>();
            }
            acc
        });
        // Each round every rank receives 3 copies of `round`.
        let expect: f32 = (0..10).map(|r| 3.0 * r as f32).sum();
        for r in results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn collective_stats_count_calls_and_time() {
        let (_, ledger) = run_ranks(3, |c| {
            for _ in 0..4 {
                c.alltoallv((0..3).map(|_| vec![1.0f32]).collect());
            }
            c.barrier();
            c.alltoallv_u32((0..3).map(|_| vec![7u32]).collect());
        });
        for rank in 0..3 {
            let s = ledger.collectives(rank);
            assert_eq!(s.calls, 6, "rank {rank}: 4 alltoallv + barrier + u32");
            assert!(s.seconds >= 0.0);
        }
        // The byte matrix export matches the per-pair accessor.
        let m = ledger.byte_matrix();
        for src in 0..3 {
            for dst in 0..3 {
                assert_eq!(m[src * 3 + dst], ledger.bytes(src, dst));
            }
        }
    }

    #[test]
    fn single_rank_works() {
        let (results, ledger) = run_ranks(1, |c| {
            let recv = c.alltoallv(vec![vec![1.0, 2.0]]);
            let mut v = vec![3.0];
            c.allreduce_sum(&mut v);
            (recv, v)
        });
        assert_eq!(results[0].0, vec![vec![1.0, 2.0]]);
        assert_eq!(results[0].1, vec![3.0]);
        assert_eq!(ledger.total(), 0);
    }

    // ---- fault-tolerance tests -------------------------------------

    /// Run `f` on a watchdog thread; panic if it does not finish in time.
    /// Guards every chaos test against reintroducing a deadlock.
    fn within<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            let out = std::panic::catch_unwind(AssertUnwindSafe(f));
            let _ = tx.send(());
            out
        });
        if rx.recv_timeout(limit).is_err() {
            panic!("deadlock: run exceeded {limit:?}");
        }
        match h.join().expect("watchdog thread vanished") {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    #[test]
    fn panicking_rank_unblocks_survivors() {
        // Regression for the seed deadlock: rank 1 panics before the
        // barrier; ranks 0 and 2 used to block forever on Barrier::wait.
        let err = within(Duration::from_secs(10), || {
            run_ranks_with(
                3,
                CommConfig::unbounded(),
                Arc::new(FaultPlan::new()),
                |c| {
                    if c.rank() == 1 {
                        panic!("rank 1 exploded");
                    }
                    c.try_barrier()?;
                    Ok(c.rank())
                },
            )
            .unwrap_err()
        });
        assert_eq!(err.rank, 1);
        assert_eq!(
            err.kind,
            CommErrorKind::Panic {
                message: "rank 1 exploded".to_string()
            }
        );
    }

    #[test]
    #[should_panic(expected = "rank 1 exploded")]
    fn compat_run_ranks_propagates_panic_without_deadlock() {
        within(Duration::from_secs(10), || {
            run_ranks(3, |c| {
                if c.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                c.barrier();
                c.rank()
            })
        });
    }

    #[test]
    fn injected_crash_aborts_with_typed_error() {
        // Rank 1's first alltoallv (collective index 0) crashes; everyone
        // else is unblocked with Aborted{origin: 1}.
        let plan = Arc::new(FaultPlan::new().with(1, 0, FaultKind::Crash));
        let err = within(Duration::from_secs(10), move || {
            run_ranks_with(3, CommConfig::default(), plan, |c| {
                let send: Vec<Vec<f32>> = (0..3).map(|_| vec![c.rank() as f32]).collect();
                let recv = c.try_alltoallv(send)?;
                Ok(recv.len())
            })
            .unwrap_err()
        });
        assert_eq!(err.rank, 1);
        assert_eq!(err.collective, "alltoallv");
        assert_eq!(err.kind, CommErrorKind::Crash);
    }

    #[test]
    fn transient_drop_is_retried_transparently() {
        // One lost delivery attempt is inside the retry budget: the
        // collective succeeds and the retry is visible in the stats.
        let plan = Arc::new(FaultPlan::new().with(0, 0, FaultKind::Drop { attempts: 1 }));
        let (results, ledger) = within(Duration::from_secs(10), move || {
            run_ranks_with(2, CommConfig::default(), plan, |c| {
                let mut v = vec![c.rank() as f32 + 1.0];
                c.try_allreduce_sum(&mut v)?;
                Ok(v[0])
            })
            .unwrap()
        });
        assert_eq!(results, vec![3.0, 3.0]);
        assert!(ledger.fault_stats().retries >= 1);
        assert!(ledger.fault_stats().injected >= 1);
    }

    #[test]
    fn exhausted_drop_budget_is_send_lost() {
        let plan = Arc::new(FaultPlan::new().with(0, 0, FaultKind::Drop { attempts: 100 }));
        let config = CommConfig {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..CommConfig::default()
        };
        let err = within(Duration::from_secs(10), move || {
            run_ranks_with(2, config, plan, |c| {
                let mut v = vec![1.0f32];
                c.try_allreduce_sum(&mut v)?;
                Ok(v[0])
            })
            .unwrap_err()
        });
        assert_eq!(err.rank, 0);
        assert_eq!(err.kind, CommErrorKind::SendLost { attempts: 3 });
    }

    #[test]
    fn bitflip_is_detected_as_corrupt() {
        let plan = Arc::new(FaultPlan::new().with(1, 0, FaultKind::BitFlip { bit: 5 }));
        let err = within(Duration::from_secs(10), move || {
            run_ranks_with(2, CommConfig::default(), plan, |c| {
                let send: Vec<Vec<f32>> = (0..2).map(|_| vec![c.rank() as f32]).collect();
                c.try_alltoallv(send).map(|r| r.len())
            })
            .unwrap_err()
        });
        // Rank 0 detects the corrupted frame sent by rank 1.
        assert_eq!(err.rank, 0);
        assert_eq!(err.peer, Some(1));
        assert_eq!(err.kind, CommErrorKind::Corrupt);
    }

    #[test]
    fn delay_within_deadline_is_transparent() {
        let plan = Arc::new(FaultPlan::new().with(0, 0, FaultKind::Delay { micros: 2_000 }));
        let (results, ledger) = within(Duration::from_secs(10), move || {
            run_ranks_with(2, CommConfig::default(), plan, |c| {
                let mut v = vec![c.rank() as f32];
                c.try_allreduce_sum(&mut v)?;
                Ok(v[0])
            })
            .unwrap()
        });
        assert_eq!(results, vec![1.0, 1.0]);
        assert_eq!(ledger.fault_stats().injected, 1);
    }

    #[test]
    fn deadline_produces_timeout_not_hang() {
        // Rank 1 never enters the collective; rank 0's receive times out.
        let config = CommConfig::with_deadline(Duration::from_millis(100));
        let err = within(Duration::from_secs(10), move || {
            run_ranks_with(2, config, Arc::new(FaultPlan::new()), |c| {
                if c.rank() == 0 {
                    let send: Vec<Vec<f32>> = (0..2).map(|_| vec![1.0]).collect();
                    c.try_alltoallv(send).map(|_| ())
                } else {
                    // Sleep past the deadline without collectives.
                    std::thread::sleep(Duration::from_secs(2));
                    Ok(())
                }
            })
            .unwrap_err()
        });
        assert_eq!(err.rank, 0);
        assert!(
            matches!(err.kind, CommErrorKind::Timeout { waited_ms } if waited_ms >= 100),
            "{err}"
        );
    }

    #[test]
    fn barrier_deadline_times_out() {
        let config = CommConfig::with_deadline(Duration::from_millis(100));
        let err = within(Duration::from_secs(10), move || {
            run_ranks_with(2, config, Arc::new(FaultPlan::new()), |c| {
                if c.rank() == 0 {
                    c.try_barrier()?;
                } else {
                    std::thread::sleep(Duration::from_secs(2));
                }
                Ok(())
            })
            .unwrap_err()
        });
        assert_eq!(err.collective, "barrier");
        assert!(matches!(err.kind, CommErrorKind::Timeout { .. }), "{err}");
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_run_ranks() {
        let workload = |c: &Communicator| {
            let mut acc = vec![c.rank() as f32 * 0.25 + 0.125, 1.5];
            for _ in 0..5 {
                c.allreduce_sum(&mut acc);
                for v in acc.iter_mut() {
                    *v *= 0.5;
                }
            }
            acc
        };
        let (plain, _) = run_ranks(3, workload);
        let (supervised, ledger) =
            run_ranks_with(3, CommConfig::default(), Arc::new(FaultPlan::new()), |c| {
                Ok(workload(c))
            })
            .unwrap();
        assert_eq!(plain, supervised, "empty plan must not perturb numerics");
        assert_eq!(ledger.fault_stats(), FaultStats::default());
    }

    #[test]
    fn closure_error_aborts_peers() {
        // A rank that fails outside any collective (e.g. checkpoint I/O)
        // still unblocks peers waiting on it.
        let err = within(Duration::from_secs(10), || {
            run_ranks_with(
                2,
                CommConfig::unbounded(),
                Arc::new(FaultPlan::new()),
                |c| {
                    if c.rank() == 1 {
                        return Err(CommError {
                            rank: 1,
                            peer: None,
                            collective: "checkpoint",
                            kind: CommErrorKind::Checkpoint {
                                message: "disk full".to_string(),
                            },
                        });
                    }
                    c.try_barrier()?;
                    Ok(())
                },
            )
            .unwrap_err()
        });
        assert_eq!(err.rank, 1);
        assert_eq!(
            err.kind,
            CommErrorKind::Checkpoint {
                message: "disk full".to_string()
            }
        );
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}

//! Fault taxonomy for the chaos-injectable communicator: deterministic
//! fault plans, typed collective errors, and the deadline/retry
//! configuration every collective obeys.
//!
//! Faults are keyed on `(rank, collective_index, kind)` — no RNG, no
//! seeds. A rank's `collective_index` counts the collectives *that rank*
//! has entered (barrier, alltoallv, allgather, allreduce, …), so the same
//! plan injects the same fault at the same point of every run. Crash
//! faults additionally fire at most once per [`FaultPlan`] instance, so a
//! restarted solve (graceful degradation) does not re-crash on the
//! renumbered surviving ranks.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What kind of fault to inject at a keyed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The rank dies at the keyed collective: it stops participating and
    /// reports [`CommErrorKind::Crash`]. Survivors are unblocked with
    /// [`CommErrorKind::Aborted`]. Fires at most once per plan instance.
    Crash,
    /// The transport loses the first `attempts` delivery attempts of every
    /// message this rank sends inside the keyed collective. Recovered by
    /// the sender's bounded retry/backoff loop while `attempts` does not
    /// exceed [`CommConfig::retries`]; exhausted budgets surface as
    /// [`CommErrorKind::SendLost`].
    Drop {
        /// How many consecutive delivery attempts are lost.
        attempts: u32,
    },
    /// Every message this rank sends inside the keyed collective is
    /// delayed by this many microseconds before delivery. Transparent
    /// while the delay stays under the receive deadline; beyond it the
    /// receiver reports [`CommErrorKind::Timeout`].
    Delay {
        /// Added delivery latency in microseconds.
        micros: u64,
    },
    /// One bit of every payload this rank sends inside the keyed
    /// collective is flipped after the frame checksum is computed, so
    /// receivers detect the corruption and report
    /// [`CommErrorKind::Corrupt`].
    BitFlip {
        /// Which bit to flip (taken modulo the payload length in bits;
        /// empty payloads are delivered unharmed).
        bit: u32,
    },
}

impl FaultKind {
    /// Stable lower-case name (`crash`, `drop`, `delay`, `bitflip`).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Drop { .. } => "drop",
            FaultKind::Delay { .. } => "delay",
            FaultKind::BitFlip { .. } => "bitflip",
        }
    }
}

/// One keyed fault: inject `kind` when `rank` enters its
/// `collective_index`-th collective (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The rank the fault targets.
    pub rank: usize,
    /// The 0-based index of the targeted collective on that rank.
    pub collective_index: u64,
    /// What to inject.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}:{}",
            self.kind.name(),
            self.rank,
            self.collective_index
        )
    }
}

/// A deterministic set of keyed faults consulted by every collective.
///
/// The empty plan is the production configuration: consulting it is a
/// length check, and a run under an empty plan is bit-identical to a run
/// without fault machinery at all (the golden tests pin this).
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    /// One-shot latches, parallel to `specs`: crash faults fire at most
    /// once per plan instance so a degraded restart survives.
    fired: Vec<AtomicBool>,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add one keyed fault.
    pub fn with(mut self, rank: usize, collective_index: u64, kind: FaultKind) -> Self {
        self.push(FaultSpec {
            rank,
            collective_index,
            kind,
        });
        self
    }

    /// Add one keyed fault in place.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
        self.fired.push(AtomicBool::new(false));
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of keyed faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// All keyed faults, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Whether a crash fault fires for `(rank, collective_index)`. A
    /// matching crash is latched: it fires once per plan instance.
    pub fn take_crash(&self, rank: usize, collective_index: u64) -> bool {
        for (spec, fired) in self.specs.iter().zip(&self.fired) {
            if spec.rank == rank
                && spec.collective_index == collective_index
                && spec.kind == FaultKind::Crash
                && !fired.swap(true, Ordering::SeqCst)
            {
                return true;
            }
        }
        false
    }

    /// The non-crash faults keyed on `(rank, collective_index)`.
    pub fn message_faults(&self, rank: usize, collective_index: u64) -> Vec<FaultKind> {
        self.specs
            .iter()
            .filter(|s| {
                s.rank == rank
                    && s.collective_index == collective_index
                    && s.kind != FaultKind::Crash
            })
            .map(|s| s.kind)
            .collect()
    }

    /// Parse one `KIND@rank:collective` chaos spec (the CLI `--chaos`
    /// grammar): `crash@1:3`, `drop@0:2`, `delay@2:5`, `bitflip@1:0`.
    /// Drop faults lose one delivery attempt, delays add 20 ms, bit flips
    /// target bit 12; use [`FaultPlan::push`] for full control.
    pub fn parse_spec(s: &str) -> Result<FaultSpec, String> {
        let (kind_str, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("`{s}`: expected KIND@rank:collective"))?;
        let (rank_str, index_str) = rest
            .split_once(':')
            .ok_or_else(|| format!("`{s}`: expected KIND@rank:collective"))?;
        let kind = match kind_str {
            "crash" => FaultKind::Crash,
            "drop" => FaultKind::Drop { attempts: 1 },
            "delay" => FaultKind::Delay { micros: 20_000 },
            "bitflip" => FaultKind::BitFlip { bit: 12 },
            other => {
                return Err(format!(
                    "`{other}`: unknown fault kind (crash, drop, delay, bitflip)"
                ))
            }
        };
        let rank: usize = rank_str
            .parse()
            .map_err(|_| format!("`{rank_str}`: rank must be a nonnegative integer"))?;
        let collective_index: u64 = index_str.parse().map_err(|_| {
            format!("`{index_str}`: collective index must be a nonnegative integer")
        })?;
        Ok(FaultSpec {
            rank,
            collective_index,
            kind,
        })
    }
}

/// Deadline, retry, and polling configuration for the collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommConfig {
    /// How long one collective may block waiting on a peer before it
    /// fails with [`CommErrorKind::Timeout`]. `None` waits forever (but
    /// still unblocks when another rank fails).
    pub deadline: Option<Duration>,
    /// How often a blocked wait re-checks the shared abort flag.
    pub poll: Duration,
    /// How many times a lost delivery attempt is retried before the
    /// sender gives up with [`CommErrorKind::SendLost`].
    pub retries: u32,
    /// Pause between delivery retries.
    pub backoff: Duration,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            deadline: Some(Duration::from_secs(30)),
            poll: Duration::from_millis(25),
            retries: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

impl CommConfig {
    /// No deadline at all: waits block until peers deliver or a rank
    /// failure aborts the run (the legacy `run_ranks` behavior, minus the
    /// deadlock).
    pub fn unbounded() -> Self {
        CommConfig {
            deadline: None,
            ..CommConfig::default()
        }
    }

    /// A config with the given per-wait deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        CommConfig {
            deadline: Some(deadline),
            poll: Duration::from_millis(25).min(deadline),
            ..CommConfig::default()
        }
    }
}

/// Why a collective failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommErrorKind {
    /// A wait on a peer exceeded the configured deadline.
    Timeout {
        /// How long the rank waited, in milliseconds.
        waited_ms: u64,
    },
    /// A received payload failed its frame checksum (e.g. an injected bit
    /// flip).
    Corrupt,
    /// An injected crash fault fired on this rank.
    Crash,
    /// A message could not be delivered within the retry budget.
    SendLost {
        /// Delivery attempts made (1 + retries).
        attempts: u32,
    },
    /// Another rank failed first; this rank was unblocked by the shared
    /// abort signal.
    Aborted {
        /// The rank whose failure aborted the run.
        origin: usize,
    },
    /// The rank's closure panicked (supervised runs catch the panic and
    /// convert it into this typed failure).
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A peer's channel hung up outside any abort (the peer thread died
    /// without reporting).
    Disconnected,
    /// A checkpoint save failed inside a rank mid-solve.
    Checkpoint {
        /// The underlying checkpoint error, rendered.
        message: String,
    },
}

impl CommErrorKind {
    /// Stable lower-case name for matching and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            CommErrorKind::Timeout { .. } => "timeout",
            CommErrorKind::Corrupt => "corrupt",
            CommErrorKind::Crash => "crash",
            CommErrorKind::SendLost { .. } => "send-lost",
            CommErrorKind::Aborted { .. } => "aborted",
            CommErrorKind::Panic { .. } => "panic",
            CommErrorKind::Disconnected => "disconnected",
            CommErrorKind::Checkpoint { .. } => "checkpoint",
        }
    }
}

/// A typed collective failure: which rank, against which peer, inside
/// which collective, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommError {
    /// The rank reporting the failure.
    pub rank: usize,
    /// The peer involved, when the failure is pairwise (the source of a
    /// timed-out receive, the destination of a lost send).
    pub peer: Option<usize>,
    /// The collective that failed (`barrier`, `alltoallv`, …).
    pub collective: &'static str,
    /// The failure class.
    pub kind: CommErrorKind,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} in {}: ", self.rank, self.collective)?;
        match &self.kind {
            CommErrorKind::Timeout { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms} ms")?
            }
            CommErrorKind::Corrupt => write!(f, "payload failed checksum")?,
            CommErrorKind::Crash => write!(f, "injected crash")?,
            CommErrorKind::SendLost { attempts } => {
                write!(f, "delivery lost after {attempts} attempts")?
            }
            CommErrorKind::Aborted { origin } => write!(f, "aborted by failure on rank {origin}")?,
            CommErrorKind::Panic { message } => write!(f, "panicked: {message}")?,
            CommErrorKind::Disconnected => write!(f, "peer hung up")?,
            CommErrorKind::Checkpoint { message } => write!(f, "checkpoint failed: {message}")?,
        }
        if let Some(peer) = self.peer {
            write!(f, " (peer rank {peer})")?;
        }
        Ok(())
    }
}

impl std::error::Error for CommError {}

/// Aggregate fault activity of one run, carried on the
/// [`crate::CommLedger`] so the coordinator can export `fault/*` metrics
/// without threading a metrics handle through every rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults that actually fired (crashes, drops, delays, bit flips).
    pub injected: u64,
    /// Delivery attempts retried after an injected drop.
    pub retries: u64,
    /// Waits that exceeded the deadline.
    pub timeouts: u64,
    /// Ranks unblocked by the shared abort signal.
    pub aborts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_kind() {
        let s = FaultPlan::parse_spec("crash@1:3").unwrap();
        assert_eq!(
            s,
            FaultSpec {
                rank: 1,
                collective_index: 3,
                kind: FaultKind::Crash
            }
        );
        assert_eq!(s.to_string(), "crash@1:3");
        assert!(matches!(
            FaultPlan::parse_spec("drop@0:2").unwrap().kind,
            FaultKind::Drop { attempts: 1 }
        ));
        assert!(matches!(
            FaultPlan::parse_spec("delay@2:5").unwrap().kind,
            FaultKind::Delay { .. }
        ));
        assert!(matches!(
            FaultPlan::parse_spec("bitflip@1:0").unwrap().kind,
            FaultKind::BitFlip { .. }
        ));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "crash",
            "crash@1",
            "crash@x:3",
            "crash@1:y",
            "meteor@1:3",
            "@1:3",
        ] {
            assert!(FaultPlan::parse_spec(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn crash_faults_fire_once() {
        let plan = FaultPlan::new().with(1, 3, FaultKind::Crash);
        assert!(!plan.take_crash(0, 3));
        assert!(!plan.take_crash(1, 2));
        assert!(plan.take_crash(1, 3));
        assert!(!plan.take_crash(1, 3), "latched after the first fire");
    }

    #[test]
    fn message_faults_filter_by_key() {
        let plan = FaultPlan::new()
            .with(0, 1, FaultKind::Drop { attempts: 2 })
            .with(0, 1, FaultKind::Delay { micros: 5 })
            .with(1, 1, FaultKind::BitFlip { bit: 0 })
            .with(0, 2, FaultKind::Crash);
        assert_eq!(plan.message_faults(0, 1).len(), 2);
        assert_eq!(plan.message_faults(1, 1).len(), 1);
        assert!(
            plan.message_faults(0, 2).is_empty(),
            "crash is not a message fault"
        );
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
    }
}

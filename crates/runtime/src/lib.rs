//! Execution substrate for distributed MemXCT: an MPI-style communicator
//! backed by threads, plus analytic machine models for projecting measured
//! kernel volumes onto the paper's supercomputers.
//!
//! The paper runs MPI ranks across up to 4096 nodes of ALCF Theta and NCSA
//! Blue Waters. This reproduction provides:
//!
//! - [`run_ranks`] / [`Communicator`]: an SPMD harness where each "rank"
//!   is a thread with private state, exchanging data only through MPI-like
//!   collectives (`alltoallv`, `allreduce_sum`, `allgather`, `barrier`).
//!   Semantics match MPI; per-pair traffic is accounted into a
//!   communication matrix (Fig 7(c)).
//! - [`MachineSpec`] / [`iteration_time`]: an α–β network + streaming
//!   memory model parameterized by Table 2's machine characteristics. The
//!   *volumes* fed to the model (nonzeroes per rank, bytes on each wire)
//!   are computed by the real partitioner on the real matrices; only the
//!   per-byte and per-message rates are modeled. This is the documented
//!   substitution for hardware we do not have (see DESIGN.md).
//! - [`WorkerPool`] / [`ExecPlan`]: the in-node execution layer — a
//!   persistent worker pool (spawned once, parked between dispatches)
//!   driving static nnz-balanced row partitions, mirroring the paper's
//!   `partsize` load balancing (§3.2). The two `unsafe` sites in
//!   `pool.rs` (lifetime-erased job pointer, disjoint output slicing)
//!   are the only ones in the workspace and carry `SAFETY` arguments.

#![warn(missing_docs)]

pub mod checkpoint;
mod comm;
pub mod fault;
mod model;
mod pool;

pub use checkpoint::{
    CheckpointError, CheckpointSink, FileCheckpointSink, MemoryCheckpointSink, Snapshot,
    SNAPSHOT_MAGIC, SNAPSHOT_MIN_VERSION, SNAPSHOT_VERSION,
};
pub use comm::{fnv1a64, run_ranks, run_ranks_with, CollectiveStats, CommLedger, Communicator};
pub use fault::{
    CommConfig, CommError, CommErrorKind, FaultKind, FaultPlan, FaultSpec, FaultStats,
};
pub use model::{
    iteration_time, KernelTimes, KernelVolumes, MachineSpec, BLUE_WATERS, COOLEY, THETA,
};
pub use pool::{
    env_threads, BatchOut, ExecPlan, PoolPoisoned, WorkerPool, POOL_DISPATCHES,
    POOL_DISPATCH_SECONDS, POOL_UTILIZATION, POOL_WORKERS,
};

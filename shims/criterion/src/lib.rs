//! Offline stand-in for the `criterion` crate (see the README "Offline
//! builds" section). Implements the macro/builder surface the workspace's
//! benches use, with a simple median-of-samples wall-clock measurement
//! instead of criterion's statistics engine.
//!
//! Bench binaries built with `harness = false` are also executed by
//! `cargo test`; in that case no `--bench` flag is passed and
//! `criterion_main!` exits immediately so test runs stay fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver; collects configuration from the builder methods.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            crit: self,
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_bench(
            &id.into_benchmark_id().0,
            sample_size,
            measurement_time,
            None,
            f,
        );
    }
}

/// Units processed per iteration, used to print a rate.
pub enum Throughput {
    /// Elements (e.g. nonzeros) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    crit: &'a Criterion,
    throughput: Option<(f64, &'static str)>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        });
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &id.into_benchmark_id().0,
            self.crit.sample_size,
            self.crit.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Benchmark a closure taking only the bencher.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_bench(
            &id.into_benchmark_id().0,
            self.crit.sample_size,
            self.crit.measurement_time,
            self.throughput,
            f,
        );
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

/// Conversion into [`BenchmarkId`], so `&str` and `BenchmarkId` both work.
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to bench closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `f`, collecting up to `sample_size` samples within the
    /// measurement budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<(f64, &'static str)>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    match throughput {
        Some((units, label)) => {
            let rate = units / median.as_secs_f64();
            println!(
                "  {name:<40} median {:>12.3?}  ({:.3e} {label})",
                median, rate
            );
        }
        None => println!("  {name:<40} median {:>12.3?}", median),
    }
}

/// Opaque value barrier (forwarding to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a bench binary. Runs only under `--bench`
/// (i.e. `cargo bench`); exits immediately under `cargo test`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !std::env::args().any(|a| a == "--bench") {
                println!("criterion shim: skipping (run via `cargo bench`)");
                return;
            }
            $($group();)+
        }
    };
}

//! Offline stand-in for the `crossbeam` crate (see the README "Offline
//! builds" section). Only `crossbeam::channel::{unbounded, Sender,
//! Receiver}` is provided, built on `std::sync::mpsc`. The receiver is
//! wrapped in a mutex so it is `Sync` like crossbeam's (std's is not).

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer channels with a `Sync` receiver.

    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel (`Sync`, unlike std's).
    pub struct Receiver<T>(Mutex<mpsc::Receiver<T>>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors if all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block until a value arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Mutex::new(rx)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn try_recv_and_timeout() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7u32).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..10u32 {
                        tx.send(i).unwrap();
                    }
                });
                for i in 0..10u32 {
                    assert_eq!(rx.recv().unwrap(), i);
                }
            });
        }
    }
}

//! Offline stand-in for the `crossbeam` crate (see the README "Offline
//! builds" section). Only `crossbeam::channel::{unbounded, Sender,
//! Receiver}` is provided, built on `std::sync::mpsc`. The receiver is
//! wrapped in a mutex so it is `Sync` like crossbeam's (std's is not).

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer channels with a `Sync` receiver.

    use std::sync::mpsc;
    use std::sync::Mutex;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug)]
    pub struct RecvError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel (`Sync`, unlike std's).
    pub struct Receiver<T>(Mutex<mpsc::Receiver<T>>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors if all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Mutex::new(rx)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..10u32 {
                        tx.send(i).unwrap();
                    }
                });
                for i in 0..10u32 {
                    assert_eq!(rx.recv().unwrap(), i);
                }
            });
        }
    }
}

//! Offline stand-in for the `rayon` crate.
//!
//! This workspace builds in sandboxes with no access to crates.io, so the
//! handful of external dependencies are vendored as minimal shims under
//! `shims/` (see the README "Offline builds" section). This crate provides
//! exactly the parallel-iterator subset the workspace uses:
//!
//! - `(range | Vec).into_par_iter()` with `map`/`collect`, `for_each`,
//!   `fold` + `reduce`;
//! - `slice.par_chunks_mut(n)` with `enumerate`, `for_each`,
//!   `for_each_init`;
//! - `rayon::current_num_threads()`.
//!
//! Execution model: the item list is materialized, split into one
//! contiguous chunk per worker, and each chunk runs on a `std::thread`
//! scoped thread. `map` preserves input order; `fold` produces one
//! accumulator per chunk (in chunk order) and `reduce` combines them
//! left-to-right, so results are deterministic for a fixed thread count.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::OnceLock;
use std::thread;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Number of worker threads (honours `RAYON_NUM_THREADS`, else the
/// available parallelism). Real rayon fixes its pool size at first use,
/// so the environment is read once and cached rather than re-parsed on
/// every call.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn threads_for(len: usize) -> usize {
    current_num_threads().min(len).max(1)
}

/// Split `items` into at most `parts` contiguous chunks of near-equal
/// size. Chunks are carved off the tail with `split_off` (a bulk pointer
/// move plus one memcpy per chunk) instead of re-collecting each chunk
/// element by element.
fn chunked<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let per = items.len().div_ceil(parts.max(1)).max(1);
    let mut out = Vec::with_capacity(parts);
    let mut rest = items;
    while !rest.is_empty() {
        let tail = rest.split_off(per.min(rest.len()));
        out.push(rest);
        rest = tail;
    }
    out
}

fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let threads = threads_for(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunks = chunked(items, threads);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// An eager "parallel iterator": adapters run immediately over a
/// materialized item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// `into_par_iter()` entry point (ranges and `Vec`).
pub trait IntoParallelIterator {
    /// Element type produced by the iterator.
    type Item: Send;
    /// Convert into an (eager) parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par_iter!(u32, u64, usize, i32, i64);

impl<T: Send> ParIter<T> {
    /// Order-preserving parallel map.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Run `f` on every item with a per-worker state created by `init`.
    pub fn for_each_init<I, G, F>(self, init: G, f: F)
    where
        G: Fn() -> I + Sync,
        F: Fn(&mut I, T) + Sync,
    {
        let threads = threads_for(self.items.len());
        if threads <= 1 {
            let mut state = init();
            for item in self.items {
                f(&mut state, item);
            }
            return;
        }
        let chunks = chunked(self.items, threads);
        let (init, f) = (&init, &f);
        thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    s.spawn(move || {
                        let mut state = init();
                        for item in chunk {
                            f(&mut state, item);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("rayon shim worker panicked");
            }
        });
    }

    /// Fold each worker's chunk into an accumulator; yields one
    /// accumulator per chunk, in chunk order.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        let threads = threads_for(self.items.len());
        if threads <= 1 {
            let mut acc = identity();
            for item in self.items {
                acc = fold_op(acc, item);
            }
            return ParIter { items: vec![acc] };
        }
        let chunks = chunked(self.items, threads);
        let (identity, fold_op) = (&identity, &fold_op);
        let items = thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    s.spawn(move || {
                        let mut acc = identity();
                        for item in chunk {
                            acc = fold_op(acc, item);
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect::<Vec<A>>()
        });
        ParIter { items }
    }

    /// Combine all items left-to-right starting from `identity()`.
    pub fn reduce<ID: Fn() -> T, F: Fn(T, T) -> T>(self, identity: ID, op: F) -> T {
        let mut acc = identity();
        for item in self.items {
            acc = op(acc, item);
        }
        acc
    }

    /// Collect the (already computed) items.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `size`, as a parallel iterator.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size.max(1)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u32> = (0..1000u32).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000u32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_see_disjoint_slices() {
        let mut y = vec![0f32; 103];
        y.par_chunks_mut(10).enumerate().for_each(|(p, chunk)| {
            for v in chunk.iter_mut() {
                *v = p as f32;
            }
        });
        assert_eq!(y[0], 0.0);
        assert_eq!(y[100], 10.0);
    }

    #[test]
    fn fold_reduce_sums() {
        let total = (0..100usize)
            .into_par_iter()
            .fold(|| 0usize, |a, b| a + b)
            .reduce(|| 0usize, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn for_each_init_reuses_state() {
        let mut y = vec![0u32; 64];
        y.par_chunks_mut(8).enumerate().for_each_init(
            || vec![0u32; 1],
            |buf, (p, chunk)| {
                buf[0] = p as u32;
                for v in chunk.iter_mut() {
                    *v = buf[0];
                }
            },
        );
        assert_eq!(y[63], 7);
    }
}

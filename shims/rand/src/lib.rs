//! Offline stand-in for the `rand` crate (see the README "Offline
//! builds" section). Provides the subset the workspace uses:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and `Rng` with
//! `gen::<f64/f32/...>()` and `gen_range(a..b)` for float and integer
//! ranges.
//!
//! The generator is splitmix64 — statistically solid for simulation and
//! test-data purposes, deterministic for a given seed.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod rngs {
    //! Named RNGs (only `SmallRng` here).
    pub use crate::SmallRng;
}

/// A small, fast, seedable RNG (splitmix64 underneath).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut rng = SmallRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        // Scramble once so nearby seeds decorrelate immediately.
        rng.next_u64();
        rng
    }
}

/// Sampling interface, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Sample a value from the "standard" distribution of `T`
    /// (uniform in `[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea & Flood).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The "standard" distribution of a type.
pub trait Standard: Sized {
    /// Sample from the standard distribution using `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly, mirroring `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_sample_range!(f32, f64);

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&x));
            let k = rng.gen_range(8..30);
            assert!((8..30).contains(&k));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

//! Offline stand-in for the `proptest` crate (see the README "Offline
//! builds" section). Supports the subset this workspace uses:
//!
//! - the `proptest! { #![proptest_config(...)] fn name(x in strat, ..) }`
//!   macro form;
//! - range strategies (`1u32..40`, `0.0f64..0.5`), `any::<T>()`, tuples,
//!   `prop::collection::vec(elem, len_range)`, `.prop_map(..)`, `Just`;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Semantics: each test function runs `ProptestConfig::cases` times with
//! inputs drawn from a deterministic per-(test, case) RNG. Integer and
//! `any` strategies are edge-biased (range endpoints, 0, MAX show up with
//! probability ~1/4) to keep most of proptest's bug-finding power. There
//! is no shrinking: a failing case panics with the sampled values fixed
//! by the deterministic seed, so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic RNG used to sample strategy values (splitmix64 seeded
/// from a hash of the test name and case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Edge bias: hit the endpoints often.
                match rng.next_u64() % 8 {
                    0 => self.start,
                    1 => ((self.end as i128) - 1) as $t,
                    _ => {
                        let r = ((rng.next_u64() as u128) % span) as i128;
                        ((self.start as i128) + r) as $t
                    }
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                if rng.next_u64() % 8 == 0 {
                    return self.start;
                }
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value (edge-biased).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                match rng.next_u64() % 8 {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prop {
    //! `prop::` namespace as re-exported by the prelude.
    pub use crate::collection;
}

pub mod prelude {
    //! Glob import mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

/// The `proptest!` macro: a block of property test functions, optionally
/// preceded by `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_stay_in_bounds(a in 1u32..40, x in -2.0f64..2.0) {
            prop_assert!((1..40).contains(&a));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        fn vec_lengths_respected(v in prop::collection::vec(0u64..10, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for e in v {
                prop_assert!(e < 10);
            }
        }

        fn tuples_and_map(pair in (1u32..5, 1u32..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=16).contains(&pair));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn edges_are_hit() {
        let strat = 1u32..40;
        let mut lo = false;
        let mut hi = false;
        for case in 0..200 {
            let mut rng = TestRng::deterministic("edges", case);
            match Strategy::sample(&strat, &mut rng) {
                1 => lo = true,
                39 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi, "endpoints never sampled");
    }
}

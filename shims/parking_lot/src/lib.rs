//! Offline stand-in for the `parking_lot` crate (see the README "Offline
//! builds" section). Provides `Mutex` with parking_lot's unpoisoned
//! `lock()` signature, backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]

use std::sync;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![0u64; 4]);
        {
            let mut g = m.lock();
            g[2] = 7;
        }
        assert_eq!(m.lock()[2], 7);
    }
}

//! Fan-beam reconstruction assembled from the library's building blocks.
//!
//! The paper's pipeline is parallel-beam, but the memory-centric idea is
//! geometry-agnostic: memoize *any* ray set into a sparse matrix once,
//! then solve with SpMV. This example builds a fan-beam projection matrix
//! by hand — Hilbert-ordering the tomogram, tracing the divergent rays,
//! scan-transposing, wrapping in the buffered kernel — and reconstructs
//! with the shared CGLS solver.
//!
//! ```text
//! cargo run --release --example fanbeam [grid_size]
//! ```

use memxct::prelude::*;
use xct_geometry::{shepp_logan, simulate_sinogram_fan, FanBeamGeometry, Grid};
use xct_hilbert::TwoLevelOrdering;
use xct_sparse::{BufferedCsr, CsrMatrix};

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);
    // The detector must out-span the magnified object shadow:
    // field of view at the axis = channels / magnification.
    let geom = FanBeamGeometry::new(3 * n, 3 * n / 2, 2.5 * n as f64, n as f64);
    println!(
        "fan-beam reconstruction: {} views x {} channels, magnification {:.2}, {n}x{n} grid",
        geom.num_projections,
        geom.num_channels,
        geom.magnification()
    );

    let grid = Grid::new(n);
    let truth = shepp_logan().rasterize(n);
    let sino = simulate_sinogram_fan(&truth, &grid, &geom);

    // Memoize: Hilbert-order the tomogram, trace every fan ray into CSR.
    let t = std::time::Instant::now();
    let tomo_ord = TwoLevelOrdering::with_default_tile(n, n).into_ordering();
    let rows: Vec<Vec<(u32, f32)>> = (0..geom.num_projections)
        .flat_map(|p| (0..geom.num_channels).map(move |c| (p, c)))
        .map(|(p, c)| {
            let mut row = Vec::new();
            xct_geometry::trace_ray(&grid, &geom.ray(p, c), |pixel, len| {
                let (i, j) = grid.pixel_coords(pixel);
                row.push((tomo_ord.rank(i, j), len));
            });
            row
        })
        .collect();
    let a = CsrMatrix::from_rows(grid.num_pixels(), &rows);
    let at = a.transpose_scan();
    let a_buf = BufferedCsr::from_csr(&a, 128, 2048);
    let at_buf = BufferedCsr::from_csr(&at, 128, 2048);
    println!(
        "memoized fan-beam matrix: {:.2}M nnz in {:.2}s",
        a.nnz() as f64 / 1e6,
        t.elapsed().as_secs_f64()
    );

    // Solve with the shared CGLS over the buffered kernels.
    let t = std::time::Instant::now();
    let (x, records) = cgls(
        &sino,
        a.ncols(),
        |p| a_buf.spmv_parallel(p),
        |r| at_buf.spmv_parallel(r),
        StopRule::EarlyTermination {
            max_iters: 40,
            min_decrease: 0.02,
        },
    );
    let image = tomo_ord.scatter(&x);
    println!(
        "{} CG iterations in {:.2}s",
        records.len(),
        t.elapsed().as_secs_f64()
    );
    println!(
        "relative L2 error vs phantom: {:.4}",
        rel_err(&image, &truth)
    );
    println!("\nthe same memoize-once/SpMV-everywhere structure the paper builds for");
    println!("parallel-beam synchrotron data carries over to divergent-beam geometry");
    println!("with zero kernel changes — only the ray generator differs.");
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

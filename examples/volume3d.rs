//! Multi-slice (3D) reconstruction: the economics of Table 5's
//! "All Slices" column — preprocessing is paid once and amortized over
//! every slice of the volume.
//!
//! ```text
//! cargo run --release --example volume3d [grid_size] [slices]
//! ```

use memxct::prelude::*;
use xct_geometry::{phantom_volume, shepp_logan, simulate_volume, NoiseModel, ScanGeometry};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let slices: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let m = 3 * n / 2;

    println!("3D reconstruction: {slices} slices of {n}x{n}, {m} projections each");

    // A spheroidal Shepp-Logan-based object.
    let volume = phantom_volume(&shepp_logan(), n, slices);
    let scan = ScanGeometry::new(m, n);
    let sinos = simulate_volume(
        &volume,
        &scan,
        NoiseModel::Poisson {
            incident: 1e6,
            scale: 0.05,
        },
        99,
    );

    let t = std::time::Instant::now();
    let rec = Reconstructor::new(xct_geometry::Grid::new(n), scan);
    println!(
        "preprocessing: {:.2}s (paid once)",
        t.elapsed().as_secs_f64()
    );

    let out = rec
        .run(&ReconRequest::cg(
            ReconInput::Volume(sinos),
            StopRule::EarlyTermination {
                max_iters: 30,
                min_decrease: 0.02,
            },
        ))
        .expect("volume reconstruction failed");

    println!(
        "{} slices reconstructed, mean {:.1} ms/slice",
        out.images.len(),
        out.per_slice_seconds.iter().sum::<f64>() / out.images.len().max(1) as f64 * 1e3
    );
    println!("\nper-slice quality (relative L2 error vs phantom):");
    println!("{:>6} {:>10} {:>12} {:>10}", "slice", "mass", "error", "ms");
    for (z, img) in out.images.iter().enumerate() {
        let truth = volume.slice(z);
        let err = rel_err(img, truth);
        let mass: f64 = truth.iter().map(|&v| v as f64).sum();
        println!(
            "{:>6} {:>10.0} {:>12.4} {:>10.1}",
            z,
            mass,
            err,
            out.per_slice_seconds[z] * 1e3
        );
    }

    // Amortization: compare one-slice and all-slices totals.
    let one = out.preprocess_seconds + out.per_slice_seconds[0];
    let all = out.preprocess_seconds + out.per_slice_seconds.iter().sum::<f64>();
    println!(
        "\npreprocessing share: {:.0}% of a single-slice run, {:.0}% of the {}-slice run",
        100.0 * out.preprocess_seconds / one,
        100.0 * out.preprocess_seconds / all,
        out.images.len()
    );
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

//! The real measurement pipeline: transmission photon counts → Beer's-law
//! normalization → centre-of-rotation correction → ring-artifact removal →
//! reconstruction. Demonstrates why each correction step exists by
//! reconstructing with and without it.
//!
//! ```text
//! cargo run --release --example corrections [grid_size]
//! ```

use memxct::prelude::*;
use xct_geometry::{
    correct_center, remove_rings, shepp_logan, shift_sinogram, simulate_sinogram, Grid, NoiseModel,
    ScanGeometry, Sinogram,
};

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let m = 3 * n / 2;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = shepp_logan().rasterize(n);

    println!("correction pipeline demo: {m}x{n} scan of the Shepp-Logan phantom\n");

    // --- Stage 0: what the detector actually measures -------------------
    // Ideal line integrals...
    let ideal = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
    // ...converted to photon counts (Beer's law)...
    let i0 = 5e4f32;
    let att = 0.05f32;
    let counts: Vec<f32> = ideal
        .data()
        .iter()
        .map(|&p| i0 * (-p * att).exp())
        .collect();
    // ...recovered by log-normalization. (In production the per-channel I0
    // comes from measured flat fields.)
    let normalized = Sinogram::from_transmission(scan, &counts, i0);
    let mut renorm = normalized.into_data();
    for v in &mut renorm {
        *v /= att;
    }
    let normalized = Sinogram::new(scan, renorm);
    println!(
        "log-normalization roundtrip error: {:.2e} (exact up to float noise)",
        rel_err(normalized.data(), ideal.data())
    );

    // --- Stage 1: the rotation axis is 3.2 channels off ------------------
    let miscentered = shift_sinogram(&normalized, 3.2);
    // --- Stage 2: four detector channels have strong gain errors ---------
    let mut data = miscentered.data().to_vec();
    let nn = n as usize;
    for p in 0..m as usize {
        for (c, v) in data.iter_mut().skip(p * nn).take(nn).enumerate() {
            // in-range: a percentage bucket, bounded by 100
            *v += match (c as u32 * 100 / n) as u32 {
                23 => 6.0,
                61 => -4.5,
                _ => 0.0,
            };
        }
    }
    let raw = Sinogram::new(scan, data);

    // --- Reconstruct at each stage of correction ------------------------
    let rec = Reconstructor::new(grid, scan);
    let stop = StopRule::EarlyTermination {
        max_iters: 30,
        min_decrease: 0.02,
    };

    // Ring removal operates in raw detector coordinates (gain errors live
    // per physical channel) and must precede the centre-of-rotation
    // resampling, which would smear each stripe across two channels.
    let solve = |sino: Sinogram| {
        rec.run(&ReconRequest::cg(ReconInput::Slice(sino), stop))
            .expect("reconstruction failed")
    };
    let (cor_only_sino, est) = correct_center(&raw);
    let deringed = remove_rings(&raw, 2);
    let (full_sino, _) = correct_center(&deringed);
    let uncorrected = solve(raw);
    let cor_only = solve(cor_only_sino);
    let full = solve(full_sino);

    println!("estimated centre shift: {est:.2} channels (injected 3.20)\n");
    println!("{:<38} {:>12}", "pipeline", "image error");
    println!(
        "{:<38} {:>12.4}",
        "no corrections",
        rel_err(&uncorrected.images[0], &truth)
    );
    println!(
        "{:<38} {:>12.4}",
        "centre-of-rotation only",
        rel_err(&cor_only.images[0], &truth)
    );
    println!(
        "{:<38} {:>12.4}",
        "ring removal + centre-of-rotation",
        rel_err(&full.images[0], &truth)
    );
    println!("\nthe corrections compose: the axis error dominates until it is fixed, and");
    println!("once centred, the remaining gap to the fully-corrected result is the ring");
    println!("artifacts the sorted-domain estimator removed from the raw data.");
}

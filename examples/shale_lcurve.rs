//! Convergence study on the shale-rock dataset (RDS1, scaled): compare CG
//! and SIRT L-curves and demonstrate the early-termination heuristic —
//! the experiment behind Fig 8 of the paper.
//!
//! ```text
//! cargo run --release --example shale_lcurve [scale_divisor] [iters]
//! ```
//!
//! With the default divisor 16, the RDS1 geometry (1501×2048) becomes
//! 93×128 — small enough to run hundreds of iterations in seconds while
//! keeping the ray geometry representative.

use memxct::prelude::*;
use xct_geometry::{simulate_sinogram, NoiseModel, RDS1};

fn main() {
    let mut args = std::env::args().skip(1);
    let div: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);

    let ds = RDS1.scaled(div);
    let grid = ds.grid();
    let scan = ds.scan();
    println!(
        "RDS1 (shale) scaled 1/{div}: sinogram {}x{}, tomogram {n}x{n}",
        ds.projections,
        ds.channels,
        n = ds.channels
    );

    let truth = ds.phantom().rasterize(ds.channels);
    let sino = simulate_sinogram(
        &truth,
        &grid,
        &scan,
        NoiseModel::Poisson {
            incident: 5e4, // noisy measurement: iterative methods shine here
            scale: 0.02,
        },
        1,
    );

    let rec = Reconstructor::new(grid, scan);
    let cg = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(sino.clone()),
            StopRule::Fixed(iters),
        ))
        .expect("CG reconstruction failed");
    let si = rec
        .run(&ReconRequest::sirt(ReconInput::Slice(sino.clone()), iters))
        .expect("SIRT reconstruction failed");

    println!("\nL-curve data (residual norm vs solution norm), both solvers:");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "iter", "CG residual", "CG ||x||", "SIRT residual", "SIRT ||x||"
    );
    let stride = (iters / 20).max(1);
    for i in (0..iters).step_by(stride) {
        let c = cg.slice_records[0].get(i);
        let s = si.slice_records[0].get(i);
        println!(
            "{:>6} {:>14.5e} {:>14.5e} {:>14.5e} {:>14.5e}",
            i + 1,
            c.map_or(f64::NAN, |r| r.residual_norm),
            c.map_or(f64::NAN, |r| r.solution_norm),
            s.map_or(f64::NAN, |r| r.residual_norm),
            s.map_or(f64::NAN, |r| r.solution_norm),
        );
    }

    // The paper's observation: CG converges much faster per iteration;
    // SIRT "does not converge even with 500 iterations".
    let cg_records = &cg.slice_records[0];
    let cg_at_30 = cg_records.get(29.min(cg_records.len() - 1)).unwrap();
    let sirt_final = si.slice_records[0].last().unwrap();
    println!(
        "\nCG residual after 30 iters: {:.5e}; SIRT residual after {} iters: {:.5e}",
        cg_at_30.residual_norm, iters, sirt_final.residual_norm
    );

    // Early termination: where does the heuristic stop?
    let early = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(sino),
            StopRule::EarlyTermination {
                max_iters: iters,
                min_decrease: 0.02,
            },
        ))
        .expect("CG reconstruction failed");
    println!(
        "early-termination heuristic stops CG after {} iterations (the paper terminates at 30)",
        early.slice_records[0].len()
    );

    // Image quality comparison at matched iteration budgets (Fig 8c/d).
    println!(
        "relative L2 error vs phantom: CG(early)={:.4}  SIRT({} iters)={:.4}",
        rel_err(&early.images[0], &truth),
        iters,
        rel_err(&si.images[0], &truth)
    );
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

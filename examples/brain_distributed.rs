//! Distributed reconstruction of the mouse-brain dataset (RDS2, scaled):
//! the headline workload of Fig 1, run across thread-ranks with the
//! `A = R·C·A_p` factorization, reporting the per-kernel breakdown and
//! communication matrix of §3.4 / Fig 7.
//!
//! ```text
//! cargo run --release --example brain_distributed [scale_divisor] [ranks]
//! ```

use memxct::prelude::*;
use xct_geometry::{simulate_sinogram, NoiseModel, RDS2};

fn main() {
    let mut args = std::env::args().skip(1);
    let div: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let ds = RDS2.scaled(div);
    println!(
        "RDS2 (mouse brain) scaled 1/{div}: sinogram {}x{}, tomogram {n}x{n}, {ranks} ranks",
        ds.projections,
        ds.channels,
        n = ds.channels
    );

    let grid = ds.grid();
    let scan = ds.scan();
    let truth = ds.phantom().rasterize(ds.channels);
    let sino = simulate_sinogram(
        &truth,
        &grid,
        &scan,
        NoiseModel::Poisson {
            incident: 1e5,
            scale: 0.02,
        },
        3,
    );

    let t = std::time::Instant::now();
    let rec = Reconstructor::new(grid, scan);
    println!(
        "preprocessing {:.2}s; matrix {:.2}M nnz",
        t.elapsed().as_secs_f64(),
        rec.operators().a.nnz() as f64 / 1e6
    );

    let t = std::time::Instant::now();
    let out = rec
        .run(
            &ReconRequest::cg(ReconInput::Slice(sino), StopRule::Fixed(30)).mode(
                ExecMode::Distributed {
                    config: DistConfig {
                        ranks,
                        use_buffered: true,
                        stop: memxct::StopRule::Fixed(30),
                        solver: memxct::dist::DistSolver::Cg,
                    },
                    ft: None,
                },
            ),
        )
        .expect("distributed reconstruction failed");
    let dist = out.dist.as_ref().expect("distributed runs report detail");
    println!(
        "30 distributed CG iterations in {:.2}s; relative L2 error {:.4}",
        t.elapsed().as_secs_f64(),
        rel_err(&out.images[0], &truth)
    );

    println!("\nper-rank kernel breakdown (accumulated seconds, Fig 11 style):");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "rank", "A_p", "C", "R", "total"
    );
    for (r, kb) in dist.breakdowns.iter().enumerate() {
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            r,
            kb.ap_s,
            kb.c_s,
            kb.r_s,
            kb.total()
        );
    }

    println!("\ncommunication matrix (KiB sent, row=src col=dst; Fig 7c):");
    print!("{:>6}", "");
    for d in 0..ranks {
        print!("{d:>8}");
    }
    println!();
    for s in 0..ranks {
        print!("{s:>6}");
        for d in 0..ranks {
            print!("{:>8.1}", dist.ledger.bytes(s, d) as f64 / 1024.0);
        }
        println!();
    }
    println!(
        "\ntotal traffic {:.2} MiB over {} communicating pairs (of {} possible)",
        dist.ledger.total() as f64 / (1024.0 * 1024.0),
        dist.ledger.nonzero_pairs(),
        ranks * ranks - ranks,
    );

    println!("\nper-rank modeled volumes (for the machine model of Tables 5/7, Fig 11):");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>8}",
        "rank", "regular MiB", "comm KiB", "reduce KiB", "peers"
    );
    for (r, v) in dist.volumes.iter().enumerate() {
        println!(
            "{:>6} {:>14.2} {:>14.1} {:>12.1} {:>8.0}",
            r,
            v.regular_bytes / (1024.0 * 1024.0),
            v.comm_bytes / 1024.0,
            v.reduce_bytes / 1024.0,
            v.comm_peers
        );
    }
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

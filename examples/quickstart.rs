//! Quickstart: simulate a scan of the Shepp–Logan phantom, reconstruct it
//! with MemXCT's CG solver, and report image quality.
//!
//! ```text
//! cargo run --release --example quickstart [grid_size] [projections]
//! ```
//!
//! This is the minimal end-to-end path: phantom → noisy sinogram →
//! preprocessing (two-level pseudo-Hilbert ordering + memoized matrices) →
//! 30 CG iterations → row-major image.

use memxct::prelude::*;
use xct_geometry::{shepp_logan, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let m: u32 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3 * n / 2);

    println!("MemXCT quickstart: {m}x{n} sinogram -> {n}x{n} tomogram");

    // 1. The "sample": the classic Shepp–Logan head phantom.
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = shepp_logan().rasterize(n);

    // 2. The "experiment": parallel-beam scan with photon noise.
    let sino = simulate_sinogram(
        &truth,
        &grid,
        &scan,
        NoiseModel::Poisson {
            incident: 1e6,
            scale: 0.05,
        },
        42,
    );

    // 3. Preprocess once (ray tracing memoized into sparse matrices).
    let t = std::time::Instant::now();
    let rec = Reconstructor::new(grid, scan);
    let pre = rec.operators().timings;
    println!(
        "preprocessing: {:.3}s (ordering {:.3}s, tracing {:.3}s, transpose {:.3}s, buffers {:.3}s)",
        t.elapsed().as_secs_f64(),
        pre.ordering_s,
        pre.tracing_s,
        pre.transpose_s,
        pre.buffers_s,
    );
    println!(
        "matrix: {} x {}, {:.2}M nonzeroes",
        rec.operators().a.nrows(),
        rec.operators().a.ncols(),
        rec.operators().a.nnz() as f64 / 1e6
    );

    // 4. Reconstruct with CG + early termination (the paper's 30-iteration
    //    heuristic emerges naturally from the L-curve).
    let t = std::time::Instant::now();
    let resp = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(sino),
            StopRule::EarlyTermination {
                max_iters: 30,
                min_decrease: 1e-4,
            },
        ))
        .expect("reconstruction failed");
    let (image, records) = (&resp.images[0], &resp.slice_records[0]);
    let iters = records.len();
    println!(
        "reconstruction: {:.3}s for {} CG iterations ({:.1} ms/iter)",
        t.elapsed().as_secs_f64(),
        iters,
        t.elapsed().as_secs_f64() * 1e3 / iters.max(1) as f64
    );

    // 5. Quality report.
    let err = rel_err(image, &truth);
    println!("relative L2 error vs phantom: {:.4}", err);
    if let Some(last) = records.last() {
        println!(
            "final residual norm ||y - Ax|| = {:.4e}, solution norm ||x|| = {:.4e}",
            last.residual_norm, last.solution_norm
        );
    }
    render_ascii(image, n as usize);
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

/// Coarse ASCII rendering of the reconstruction (32x32 downsample).
fn render_ascii(img: &[f32], n: usize) {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let cells = 32.min(n);
    let step = n / cells;
    let max = img.iter().cloned().fold(f32::MIN, f32::max).max(1e-6);
    println!("reconstruction preview ({cells}x{cells}):");
    for cy in 0..cells {
        let mut line = String::with_capacity(cells * 2);
        for cx in 0..cells {
            // Average the block.
            let mut acc = 0f32;
            for j in 0..step {
                for i in 0..step {
                    acc += img[(cy * step + j) * n + cx * step + i];
                }
            }
            let v = (acc / (step * step) as f32 / max).clamp(0.0, 1.0);
            let c = RAMP[((v * (RAMP.len() - 1) as f32).round()) as usize] as char;
            line.push(c);
            line.push(c);
        }
        println!("{line}");
    }
}

//! Visualize the two-level pseudo-Hilbert ordering on the paper's 13×11
//! example domain (Fig 4), and compare partition connectivity against
//! Morton and row-major orderings (§3.2.3).
//!
//! ```text
//! cargo run --release --example ordering_viz [width] [height] [tile]
//! ```

use xct_hilbert::{Ordering2D, TwoLevelOrdering};

fn main() {
    let mut args = std::env::args().skip(1);
    let w: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(13);
    let h: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(11);
    let tile: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let two = TwoLevelOrdering::new(w, h, tile);
    let lay = two.layout();
    println!(
        "two-level pseudo-Hilbert ordering of a {w}x{h} domain: {} tiles of {t}x{t} ({}x{} grid)",
        lay.num_tiles(),
        lay.tiles_x,
        lay.tiles_y,
        t = tile,
    );

    // Level 1: tile indices along the rectangular Hilbert curve (Fig 4a).
    println!("\nlevel 1 — tile curve order:");
    let mut tile_rank = vec![0usize; (lay.tiles_x * lay.tiles_y) as usize];
    for (i, &(tx, ty)) in lay.tile_order.iter().enumerate() {
        tile_rank[(ty * lay.tiles_x + tx) as usize] = i;
    }
    for ty in 0..lay.tiles_y {
        let row: Vec<String> = (0..lay.tiles_x)
            .map(|tx| format!("{:3}", tile_rank[(ty * lay.tiles_x + tx) as usize]))
            .collect();
        println!("  {}", row.join(" "));
    }

    // Level 2: cell ranks (Fig 4's full picture).
    let ord = two.ordering();
    println!("\nlevel 2 — cell memory ranks:");
    for y in 0..h {
        let row: Vec<String> = (0..w).map(|x| format!("{:4}", ord.rank(x, y))).collect();
        println!("  {}", row.join(""));
    }

    // Locality metrics vs the alternatives.
    println!("\nlocality comparison (lower step distance & more connected partitions = better):");
    println!(
        "  {:<22} {:>10} {:>12} {:>22}",
        "ordering", "mean step", "adjacency", "connected partitions/8"
    );
    let all: Vec<(&str, Ordering2D)> = vec![
        ("row-major", Ordering2D::row_major(w, h)),
        ("column-major", Ordering2D::column_major(w, h)),
        ("morton", Ordering2D::morton(w, h)),
        ("hilbert (padded)", Ordering2D::hilbert_square(w, h)),
        ("two-level hilbert", two.ordering().clone()),
    ];
    for (name, o) in &all {
        println!(
            "  {:<22} {:>10.3} {:>11.1}% {:>19}/8",
            name,
            o.mean_step_distance(),
            o.adjacency_fraction() * 100.0,
            o.connected_partition_count(8),
        );
    }
    println!("\nthe process-level decomposition (Fig 4b) assigns contiguous tile runs:");
    for (p, range) in lay.partition_ranks(4).iter().enumerate() {
        println!(
            "  process {p}: ranks {:5}..{:5} ({} cells)",
            range.start,
            range.end,
            range.end - range.start
        );
    }
}

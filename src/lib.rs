//! Umbrella crate for the MemXCT reproduction: re-exports every workspace
//! crate so examples and integration tests can use one dependency.
//!
//! See the individual crates for the actual implementation:
//! [`memxct`] (core reconstruction), [`xct_geometry`], [`xct_hilbert`],
//! [`xct_sparse`], [`xct_cachesim`], [`xct_runtime`], [`xct_compxct`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use memxct;
pub use xct_cachesim;
pub use xct_compxct;
pub use xct_geometry;
pub use xct_hilbert;
pub use xct_runtime;
pub use xct_sparse;
